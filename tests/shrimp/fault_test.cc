/**
 * @file
 * Unit tests for the backplane fault model (shrimp/fault.hh): the
 * `--faults=` spec parser, the per-(seed, src, dst) stream
 * determinism the sharded engine relies on, and the decision
 * semantics (cumulative probability mapping, down/degraded windows,
 * the restricted control path, self-send exemption).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "shrimp/fault.hh"

using namespace shrimp;
using net::FaultAction;
using net::FaultConfig;
using net::FaultDecision;
using net::FaultModel;
using net::parseFaultSpec;

namespace
{

FaultModel
modelFor(const FaultConfig &cfg, unsigned nodes = 4)
{
    FaultModel m;
    for (unsigned n = 0; n < nodes; ++n)
        m.grow(n);
    m.configure(cfg);
    return m;
}

} // namespace

TEST(FaultSpec, ParsesFullSpec)
{
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec("drop=0.05,corrupt=0.02,dup=0.01,"
                               "delay=0.1,delay-us=50,degrade-drop=0.5,"
                               "seed=42,no-retransmit",
                               cfg, nullptr));
    EXPECT_TRUE(cfg.specified);
    EXPECT_DOUBLE_EQ(cfg.dropProb, 0.05);
    EXPECT_DOUBLE_EQ(cfg.corruptProb, 0.02);
    EXPECT_DOUBLE_EQ(cfg.dupProb, 0.01);
    EXPECT_DOUBLE_EQ(cfg.delayProb, 0.1);
    EXPECT_DOUBLE_EQ(cfg.delayUs, 50.0);
    EXPECT_DOUBLE_EQ(cfg.degradedDropProb, 0.5);
    EXPECT_EQ(cfg.seed, 42u);
    EXPECT_TRUE(cfg.disableRetransmit);
    EXPECT_TRUE(cfg.anyActive());
}

TEST(FaultSpec, ParsesWindows)
{
    FaultConfig cfg;
    ASSERT_TRUE(
        parseFaultSpec("down=0-1@100-200,degrade=1-2@0-50", cfg,
                       nullptr));
    ASSERT_EQ(cfg.downWindows.size(), 1u);
    EXPECT_EQ(cfg.downWindows[0].src, 0u);
    EXPECT_EQ(cfg.downWindows[0].dst, 1u);
    EXPECT_EQ(cfg.downWindows[0].from, Tick(100) * tickUs);
    EXPECT_EQ(cfg.downWindows[0].to, Tick(200) * tickUs);
    ASSERT_EQ(cfg.degradedWindows.size(), 1u);
    EXPECT_EQ(cfg.degradedWindows[0].src, 1u);
    EXPECT_EQ(cfg.degradedWindows[0].dst, 2u);
    EXPECT_TRUE(cfg.anyActive());
}

TEST(FaultSpec, OffIsSpecifiedButInactive)
{
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec("off", cfg, nullptr));
    EXPECT_TRUE(cfg.specified);
    EXPECT_FALSE(cfg.anyActive());
}

TEST(FaultSpec, RejectsGarbage)
{
    std::ostringstream err;
    FaultConfig cfg;
    cfg.dropProb = 0.5; // must stay untouched on failure
    EXPECT_FALSE(parseFaultSpec("drop=banana", cfg, &err));
    EXPECT_FALSE(parseFaultSpec("drop=1.5", cfg, &err));
    EXPECT_FALSE(parseFaultSpec("drop=-0.1", cfg, &err));
    EXPECT_FALSE(parseFaultSpec("frobnicate=1", cfg, &err));
    EXPECT_FALSE(parseFaultSpec("down=0-1", cfg, &err));
    EXPECT_FALSE(parseFaultSpec("down=0-1@50-10", cfg, &err));
    // The four outcome probabilities share one uniform draw.
    EXPECT_FALSE(
        parseFaultSpec("drop=0.5,corrupt=0.3,dup=0.3", cfg, &err));
    EXPECT_DOUBLE_EQ(cfg.dropProb, 0.5);
    EXPECT_FALSE(cfg.specified);
    EXPECT_FALSE(err.str().empty());
}

TEST(FaultModel, InactiveNeverDrawsOrCounts)
{
    FaultModel m = modelFor(FaultConfig{});
    for (int i = 0; i < 100; ++i) {
        FaultDecision d = m.decide(0, 1, Tick(i), false);
        EXPECT_EQ(d.action, FaultAction::Deliver);
    }
    EXPECT_EQ(m.totals().decisions, 0u);
}

TEST(FaultModel, SelfSendsAreExempt)
{
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec("drop=1", cfg, nullptr));
    FaultModel m = modelFor(cfg);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(m.decide(2, 2, Tick(i), false).action,
                  FaultAction::Deliver);
    EXPECT_EQ(m.totals().decisions, 0u);
}

TEST(FaultModel, CertainDropDropsEverything)
{
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec("drop=1", cfg, nullptr));
    FaultModel m = modelFor(cfg);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(m.decide(0, 1, Tick(i), false).action,
                  FaultAction::Drop);
    EXPECT_EQ(m.totals().dropped, 50u);
    EXPECT_EQ(m.totals().decisions, 50u);
}

TEST(FaultModel, StreamsAreDeterministicPerLinkPair)
{
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec(
        "drop=0.2,corrupt=0.2,dup=0.2,delay=0.2,seed=7", cfg, nullptr));

    // Two independently constructed models make identical decisions
    // for the same (src, dst, call-index) sequence — regardless of
    // the order link pairs are interleaved in, because every ordered
    // pair owns its own stream. This is the shard-count invariance
    // argument in miniature.
    FaultModel a = modelFor(cfg);
    FaultModel b = modelFor(cfg);

    std::vector<FaultDecision> aSeq;
    // Model a: strictly per-pair batches.
    for (int i = 0; i < 40; ++i)
        aSeq.push_back(a.decide(0, 1, Tick(i), false));
    for (int i = 0; i < 40; ++i)
        aSeq.push_back(a.decide(1, 0, Tick(i), false));

    // Model b: the same per-pair call sequences, interleaved.
    std::vector<FaultDecision> b01, b10;
    for (int i = 0; i < 40; ++i) {
        b10.push_back(b.decide(1, 0, Tick(i), false));
        b01.push_back(b.decide(0, 1, Tick(i), false));
    }
    for (int i = 0; i < 40; ++i) {
        EXPECT_EQ(aSeq[i].action, b01[i].action) << "0->1 call " << i;
        EXPECT_EQ(aSeq[i].aux, b01[i].aux);
        EXPECT_EQ(aSeq[40 + i].action, b10[i].action)
            << "1->0 call " << i;
    }
}

TEST(FaultModel, DifferentSeedsDiverge)
{
    FaultConfig c1, c2;
    ASSERT_TRUE(parseFaultSpec("drop=0.5,seed=1", c1, nullptr));
    ASSERT_TRUE(parseFaultSpec("drop=0.5,seed=2", c2, nullptr));
    FaultModel a = modelFor(c1);
    FaultModel b = modelFor(c2);
    bool diverged = false;
    for (int i = 0; i < 64 && !diverged; ++i) {
        diverged = a.decide(0, 1, Tick(i), false).action
                   != b.decide(0, 1, Tick(i), false).action;
    }
    EXPECT_TRUE(diverged);
}

TEST(FaultModel, DownWindowDropsUnconditionally)
{
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec("down=0-1@100-200", cfg, nullptr));
    FaultModel m = modelFor(cfg);

    Tick inside = Tick(150) * tickUs;
    Tick outside = Tick(250) * tickUs;
    EXPECT_EQ(m.decide(0, 1, inside, false).action, FaultAction::Drop);
    EXPECT_EQ(m.decide(0, 1, outside, false).action,
              FaultAction::Deliver);
    // The window names one directed link only.
    EXPECT_EQ(m.decide(1, 0, inside, false).action,
              FaultAction::Deliver);
    EXPECT_EQ(m.totals().downDropped, 1u);
}

TEST(FaultModel, DegradedWindowBoostsDrop)
{
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec("degrade=0-1@0-1000,degrade-drop=1",
                               cfg, nullptr));
    FaultModel m = modelFor(cfg);
    // degrade-drop=1 makes the in-window drop probability 1.
    EXPECT_EQ(m.decide(0, 1, Tick(0), false).action,
              FaultAction::Drop);
    EXPECT_EQ(m.decide(0, 1, Tick(2000) * tickUs, false).action,
              FaultAction::Deliver);
}

TEST(FaultModel, ControlPathOnlyDropsOrDelays)
{
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec(
        "drop=0.3,corrupt=0.35,dup=0.35,seed=3", cfg, nullptr));
    FaultModel m = modelFor(cfg);
    for (int i = 0; i < 200; ++i) {
        FaultAction a = m.decide(0, 1, Tick(i), true).action;
        EXPECT_TRUE(a == FaultAction::Deliver || a == FaultAction::Drop)
            << "control chunk saw action " << int(a);
    }
}

TEST(FaultModel, CorruptCarriesAuxDraw)
{
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec("corrupt=1", cfg, nullptr));
    FaultModel m = modelFor(cfg);
    FaultDecision d1 = m.decide(0, 1, Tick(0), false);
    FaultDecision d2 = m.decide(0, 1, Tick(1), false);
    EXPECT_EQ(d1.action, FaultAction::Corrupt);
    EXPECT_EQ(d2.action, FaultAction::Corrupt);
    // The aux draws come from the same stream: successive corruptions
    // flip different bytes (overwhelmingly).
    EXPECT_NE(d1.aux, d2.aux);
}

TEST(FaultModel, DelayAddsConfiguredLatency)
{
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec("delay=1,delay-us=35", cfg, nullptr));
    FaultModel m = modelFor(cfg);
    FaultDecision d = m.decide(0, 1, Tick(0), false);
    EXPECT_EQ(d.action, FaultAction::Delay);
    EXPECT_EQ(d.extraDelay, Tick(35) * tickUs);
}
