/**
 * @file
 * Unit tests for the Network Interface Page Table.
 */

#include <gtest/gtest.h>

#include "shrimp/nipt.hh"

using namespace shrimp;
using namespace shrimp::net;

TEST(Nipt, Has32kEntries)
{
    EXPECT_EQ(Nipt::numEntries, 32768u)
        << "indexed with 15 bits (paper Section 8)";
}

TEST(Nipt, StartsInvalid)
{
    Nipt t;
    EXPECT_FALSE(t.get(0).valid);
    EXPECT_FALSE(t.get(Nipt::numEntries - 1).valid);
    EXPECT_EQ(t.validEntries(), 0u);
}

TEST(Nipt, SetGetClear)
{
    Nipt t;
    t.set(100, 3, 0x55);
    const NiptEntry &e = t.get(100);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.dstNode, 3u);
    EXPECT_EQ(e.dstPage, 0x55u);
    t.clear(100);
    EXPECT_FALSE(t.get(100).valid);
}

TEST(Nipt, IndexWraps15Bits)
{
    Nipt t;
    t.set(5, 1, 2);
    // The hardware masks the page number to 15 bits.
    EXPECT_TRUE(t.get(5 + Nipt::numEntries).valid);
}

TEST(Nipt, AllocateFindsFreeSlots)
{
    Nipt t;
    std::size_t a = t.allocate();
    t.set(a, 0, 0);
    std::size_t b = t.allocate();
    EXPECT_NE(a, b);
    t.set(b, 0, 0);
    EXPECT_EQ(t.validEntries(), 2u);
}

TEST(Nipt, AllocateRunIsContiguous)
{
    Nipt t;
    std::size_t r = t.allocateRun(8);
    ASSERT_LT(r, Nipt::numEntries);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_FALSE(t.get(r + i).valid);
}

TEST(Nipt, AllocateRunSkipsFragments)
{
    Nipt t;
    // Occupy entries 0..9 except a hole of 3 at 4..6.
    for (std::size_t i = 0; i < 10; ++i) {
        if (i < 4 || i > 6)
            t.set(i, 0, 0);
    }
    EXPECT_EQ(t.allocateRun(3), 4u) << "exact-fit hole";
    EXPECT_EQ(t.allocateRun(4), 10u) << "too big for the hole";
}

TEST(Nipt, AllocateRunFullTableFails)
{
    Nipt t;
    EXPECT_EQ(t.allocateRun(0), Nipt::numEntries);
    EXPECT_EQ(t.allocateRun(Nipt::numEntries + 1), Nipt::numEntries);
    // Fill everything.
    for (std::size_t i = 0; i < Nipt::numEntries; ++i)
        t.set(i, 0, 0);
    EXPECT_EQ(t.allocateRun(1), Nipt::numEntries);
}
