/**
 * @file
 * Tests for the proxy-translation cache on the UDMA initiation path:
 * repeat proxy references hit the cache, the I2 shootdown
 * (remap/page-out) drops the cached entry, the I3 write-protect is
 * observed through the cache without explicit invalidation, and a
 * missed shootdown (seeded mutation) is flagged by the auditor as a
 * stale-cache I2 violation. The clean paths run under an every-event
 * fail-fast monitor, so coherence holds at every kernel event, not
 * just at the test's checkpoints.
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/audit.hh"
#include "check/monitor.hh"
#include "core/system.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
fbConfig()
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 256;
    fb.fbHeight = 256;
    cfg.node.devices.push_back(fb);
    return cfg;
}

/** A parked process owning one dirty buffer page and a device window,
 *  with the scheduler drained — the test drives the kernel directly
 *  through the model-check CPU (performUserAccess). */
os::Process &
spawnParked(Node &node, Addr &buf_out)
{
    auto buf = std::make_shared<Addr>(0);
    os::Process &pr = node.kernel().spawn(
        "puppet", [buf](os::UserContext &ctx) -> sim::ProcTask {
            *buf = co_await ctx.sysAllocMemory(ctx.pageBytes());
            co_await ctx.store(*buf, 0xD1);
            co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            co_await ctx.syscall([](os::Kernel &, os::Process &,
                                    os::SyscallControl &sc) {
                sc.blocks = true;
            });
        });
    node.kernel().eq().run();
    EXPECT_EQ(pr.state(), os::ProcState::Blocked);
    buf_out = *buf;
    return pr;
}

void
expectClean(System &sys, const char *when)
{
    for (const auto &v : audit::checkAll(sys))
        ADD_FAILURE() << when << ": " << audit::describe(v);
}

} // namespace

TEST(ProxyTcache, RepeatProxyAccessHitsCache)
{
    System sys(fbConfig());
    Node &node = sys.node(0);
    os::Kernel &kernel = node.kernel();
    Addr buf = 0;
    os::Process &pr = spawnParked(node, buf);
    kernel.modelSwitchTo(pr);

    Addr proxy_va = kernel.layout().proxy(buf, 0);
    const auto &tc = kernel.proxyTcache();

    ASSERT_TRUE(kernel.performUserAccess(pr, proxy_va, false).ok);
    std::uint64_t misses_after_first = tc.misses();
    std::uint64_t hits_after_first = tc.hits();
    EXPECT_GE(misses_after_first, 1u)
        << "the first proxy reference must populate the cache";

    ASSERT_TRUE(kernel.performUserAccess(pr, proxy_va, false).ok);
    ASSERT_TRUE(kernel.performUserAccess(pr, proxy_va, false).ok);
    EXPECT_EQ(tc.misses(), misses_after_first)
        << "repeat references must not miss";
    EXPECT_EQ(tc.hits(), hits_after_first + 2);
    expectClean(sys, "after cached proxy loads");
}

TEST(ProxyTcache, EvictionDropsCachedEntryAndStaysClean)
{
    System sys(fbConfig());
    Node &node = sys.node(0);
    os::Kernel &kernel = node.kernel();
    Addr buf = 0;
    os::Process &pr = spawnParked(node, buf);
    kernel.modelSwitchTo(pr);

    // Fail fast on any invariant break at any kernel event while the
    // remap cycle runs — the I2 guarantee the cache must preserve.
    audit::Monitor monitor(sys, audit::Mode::EveryEvent,
                           /*fail_fast=*/true);

    Addr proxy_va = kernel.layout().proxy(buf, 0);
    const auto &tc = kernel.proxyTcache();
    ASSERT_TRUE(kernel.performUserAccess(pr, proxy_va, false).ok);
    ASSERT_TRUE(kernel.performUserAccess(pr, proxy_va, false).ok);
    std::uint64_t misses_before = tc.misses();

    // Page the real page out: the I2 shootdown removes the proxy PTE
    // and must drop the cached translation with it.
    Tick lat = 0;
    ASSERT_TRUE(kernel.evictPage(pr, buf, lat));
    expectClean(sys, "after page-out");

    // The next proxy reference re-faults and repopulates: a miss, not
    // a (stale) hit.
    ASSERT_TRUE(kernel.performUserAccess(pr, proxy_va, false).ok);
    EXPECT_GT(tc.misses(), misses_before)
        << "the shot-down translation must not be served from cache";
    expectClean(sys, "after re-fault");
}

TEST(ProxyTcache, CleanPageWriteProtectIsSeenThroughCache)
{
    System sys(fbConfig());
    Node &node = sys.node(0);
    os::Kernel &kernel = node.kernel();
    Addr buf = 0;
    os::Process &pr = spawnParked(node, buf);
    kernel.modelSwitchTo(pr);

    Addr proxy_va = kernel.layout().proxy(buf, 0);

    // A proxy STORE (a DESTINATION latch) caches a writable proxy
    // translation; the real page is dirty so this is I3-legal.
    ASSERT_TRUE(
        kernel.performUserAccess(pr, proxy_va, true,
                                 kernel.layout().pageBytes())
            .ok);
    expectClean(sys, "after proxy store");

    // cleanPage write-protects the proxy PTE *in place*. The cache
    // holds a pointer to that PTE, so no invalidation is needed —
    // but the next cached write must see writable == false and take
    // the slow upgrade path instead of a stale writable hit.
    Tick lat = 0;
    ASSERT_TRUE(kernel.cleanPage(pr, buf, lat));
    expectClean(sys, "after cleanPage");

    std::uint64_t upgrades_before = kernel.proxyWriteUpgrades();
    ASSERT_TRUE(
        kernel.performUserAccess(pr, proxy_va, true,
                                 kernel.layout().pageBytes())
            .ok);
    EXPECT_GT(kernel.proxyWriteUpgrades(), upgrades_before)
        << "a write after cleaning must re-fault to mark the page "
           "dirty (I3), not hit a stale writable cache entry";
    expectClean(sys, "after write upgrade");
}

TEST(ProxyTcache, MissedShootdownIsFlaggedAsI2)
{
    System sys(fbConfig());
    Node &node = sys.node(0);
    os::Kernel &kernel = node.kernel();
    Addr buf = 0;
    os::Process &pr = spawnParked(node, buf);
    kernel.modelSwitchTo(pr);

    Addr proxy_va = kernel.layout().proxy(buf, 0);
    ASSERT_TRUE(kernel.performUserAccess(pr, proxy_va, false).ok);
    expectClean(sys, "before the seeded mutation");

    // Corrupt: shoot down the proxy PTE but leave the cache standing.
    os::MutationKnobs m;
    m.skipTcacheShootdown = true;
    kernel.setMutations(m);
    Tick lat = 0;
    ASSERT_TRUE(kernel.evictPage(pr, buf, lat));

    bool found = false;
    for (const auto &v : audit::checkAll(sys)) {
        if (v.invariant == audit::Invariant::I2Mapping
                && v.detail.find("translation-cache")
                       != std::string::npos)
            found = true;
    }
    EXPECT_TRUE(found)
        << "a cached translation surviving the I2 shootdown must be "
           "flagged as a stale-cache I2 violation";
}
