/**
 * @file
 * Tests for the UserContext API surface: address helpers, op
 * composition, and interleaving behaviour.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
cfg1()
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    cfg.node.devices.push_back(fb);
    return cfg;
}

} // namespace

TEST(UserContext, ProxyAddrMatchesLayout)
{
    System sys(cfg1());
    bool checked = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            co_await ctx.compute(1);
            EXPECT_EQ(ctx.proxyAddr(0x1234, 0),
                      sys.layout().proxy(0x1234, 0));
            EXPECT_EQ(ctx.pageBytes(), sys.params().pageBytes);
            checked = true;
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(checked);
}

TEST(UserContext, ComputeAdvancesTimeProportionally)
{
    System sys(cfg1());
    Tick d_small = 0, d_large = 0;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Tick t0 = ctx.kernel().eq().now();
            co_await ctx.compute(600); // 10 us
            Tick t1 = ctx.kernel().eq().now();
            co_await ctx.compute(6000); // 100 us
            Tick t2 = ctx.kernel().eq().now();
            d_small = t1 - t0;
            d_large = t2 - t1;
        });
    sys.runUntilAllDone();
    EXPECT_NEAR(double(d_large) / double(d_small), 10.0, 0.1);
}

TEST(UserContext, LoadsAndStoresAreSequentiallyConsistent)
{
    System sys(cfg1());
    bool ok = true;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            for (int i = 0; i < 64; ++i) {
                co_await ctx.store(buf + (i % 8) * 8, i);
                std::uint64_t v =
                    co_await ctx.load(buf + (i % 8) * 8);
                ok = ok && v == std::uint64_t(i);
            }
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(ok);
}

TEST(UserContext, ProcessAccessorsWork)
{
    System sys(cfg1());
    sys.node(0).kernel().spawn(
        "named-proc", [&](os::UserContext &ctx) -> sim::ProcTask {
            co_await ctx.compute(1);
            EXPECT_EQ(ctx.process().name(), "named-proc");
            EXPECT_EQ(ctx.process().state(), os::ProcState::Running);
        });
    sys.runUntilAllDone();
}

TEST(UserContext, UncachedIoCostsMoreThanMemory)
{
    System sys(cfg1());
    Tick mem_t = 0, io_t = 0;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1);
            (void)co_await ctx.load(buf); // warm TLB
            Addr proxy = ctx.proxyAddr(buf, 0);
            (void)co_await ctx.load(proxy); // warm proxy mapping
            Tick a = ctx.kernel().eq().now();
            (void)co_await ctx.load(buf);
            Tick b = ctx.kernel().eq().now();
            (void)co_await ctx.load(proxy);
            Tick c = ctx.kernel().eq().now();
            mem_t = b - a;
            io_t = c - b;
        });
    sys.runUntilAllDone();
    EXPECT_GT(io_t, mem_t * 3)
        << "a proxy reference crosses the I/O bus (0.9 us vs 150 ns)";
}

TEST(UserContext, TlbMissAddsLatency)
{
    System sys(cfg1());
    Tick hit_t = 0, miss_t = 0;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            // Touch 96 pages: more than the 64-entry TLB.
            Addr buf = co_await ctx.sysAllocMemory(96 * 4096);
            for (int i = 0; i < 96; ++i)
                co_await ctx.store(buf + i * 4096, i);
            // This page's entry was evicted long ago: miss.
            Tick a = ctx.kernel().eq().now();
            (void)co_await ctx.load(buf);
            Tick b = ctx.kernel().eq().now();
            // Immediately again: hit.
            (void)co_await ctx.load(buf);
            Tick c = ctx.kernel().eq().now();
            miss_t = b - a;
            hit_t = c - b;
        });
    sys.runUntilAllDone();
    EXPECT_GT(miss_t, hit_t) << "the table walk must be visible";
}
