/**
 * @file
 * Paging tests: demand-zero, eviction under pressure, swap round
 * trips, clock second-chance, pinning, and cleaning.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
tinyConfig(std::uint64_t mem_kb)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = mem_kb << 10;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    cfg.node.devices.push_back(fb);
    return cfg;
}

} // namespace

TEST(Paging, DemandZeroPages)
{
    System sys(tinyConfig(64));
    std::uint64_t v = ~0ull;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(8192);
            v = co_await ctx.load(buf + 4096);
        });
    sys.runUntilAllDone();
    EXPECT_EQ(v, 0u) << "fresh pages read as zero";
    EXPECT_GE(sys.node(0).kernel().pageFaults(), 1u);
}

TEST(Paging, WorkingSetBiggerThanMemorySurvives)
{
    System sys(tinyConfig(32)); // 8 frames
    bool ok = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            constexpr unsigned pages = 24;
            Addr buf = co_await ctx.sysAllocMemory(pages * 4096);
            for (unsigned i = 0; i < pages; ++i)
                co_await ctx.store(buf + i * 4096, 0x1000 + i);
            bool all = true;
            for (unsigned i = 0; i < pages; ++i) {
                std::uint64_t v = co_await ctx.load(buf + i * 4096);
                all = all && v == 0x1000 + i;
            }
            ok = all;
        });
    sys.runUntilAllDone(Tick(600) * tickSec);
    EXPECT_TRUE(ok);
    auto &k = sys.node(0).kernel();
    EXPECT_GT(k.evictions(), 0u);
    EXPECT_GT(k.backingStore().pageWrites(), 0u);
    EXPECT_GT(k.backingStore().pageReads(), 0u);
}

TEST(Paging, CleanPagesAreNotRewrittenToSwap)
{
    System sys(tinyConfig(32)); // 8 frames
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            constexpr unsigned pages = 20;
            Addr buf = co_await ctx.sysAllocMemory(pages * 4096);
            // Write once...
            for (unsigned i = 0; i < pages; ++i)
                co_await ctx.store(buf + i * 4096, i);
            // ...then only read in several sweeps.
            for (int sweep = 0; sweep < 3; ++sweep) {
                for (unsigned i = 0; i < pages; ++i)
                    (void)co_await ctx.load(buf + i * 4096);
            }
        });
    sys.runUntilAllDone(Tick(600) * tickSec);
    auto &k = sys.node(0).kernel();
    // Each page is written to swap at most a couple of times; clean
    // re-evictions must not add writes.
    EXPECT_LE(k.backingStore().pageWrites(), 30u);
    EXPECT_GT(k.evictions(), k.backingStore().pageWrites())
        << "some evictions must have found clean pages";
}

TEST(Paging, EvictOneFrameApi)
{
    System sys(tinyConfig(64));
    bool verified = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4 * 4096);
            for (int i = 0; i < 4; ++i)
                co_await ctx.store(buf + i * 4096, i + 1);
            auto &k = ctx.kernel();
            std::size_t free_before = k.freeFrames();
            Tick lat = 0;
            // The clock needs a referenced-bit sweep first, then
            // evicts a dirty page (charging swap latency).
            EXPECT_TRUE(k.evictOneFrame(lat));
            EXPECT_EQ(k.freeFrames(), free_before + 1);
            EXPECT_GT(lat, 0u);
            // Every page still reads back (one refaults from swap).
            bool all = true;
            for (int i = 0; i < 4; ++i) {
                std::uint64_t v = co_await ctx.load(buf + i * 4096);
                all = all && v == std::uint64_t(i + 1);
            }
            verified = all;
        });
    sys.runUntilAllDone(Tick(60) * tickSec);
    EXPECT_TRUE(verified);
}

TEST(Paging, PinnedFramesAreNeverEvicted)
{
    System sys(tinyConfig(32)); // 8 frames
    Addr pinned_va = 0;
    std::uint64_t seen = 0;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr keep = co_await ctx.sysAllocMemory(4096);
            pinned_va = keep;
            co_await ctx.store(keep, 0xFEE1600D);
            co_await ctx.syscall([keep](os::Kernel &k, os::Process &pr,
                                        os::SyscallControl &sc) {
                Tick lat = 0;
                sc.result = k.pinRange(pr, keep, 4096, lat) ? 1 : 0;
                sc.extraLatency = lat;
            });
            // Thrash far more pages than physical memory.
            Addr big = co_await ctx.sysAllocMemory(24 * 4096);
            for (unsigned i = 0; i < 24; ++i)
                co_await ctx.store(big + i * 4096, i);
            seen = co_await ctx.load(keep);
        });
    sys.runUntilAllDone(Tick(600) * tickSec);
    EXPECT_EQ(seen, 0xFEE1600Du);
    // The pinned page never went to swap: its content survived in
    // memory even though everything else thrashed.
    auto &k = sys.node(0).kernel();
    EXPECT_GT(k.evictions(), 0u);
}

TEST(Paging, ExitReleasesFrames)
{
    System sys(tinyConfig(64)); // 16 frames
    auto &k = sys.node(0).kernel();
    std::size_t before = k.freeFrames();
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(8 * 4096);
            for (int i = 0; i < 8; ++i)
                co_await ctx.store(buf + i * 4096, i);
        });
    sys.runUntilAllDone();
    EXPECT_EQ(k.freeFrames(), before) << "exit returns every frame";
}

TEST(Paging, OutOfMemoryWithAllPinnedKills)
{
    System sys(tinyConfig(16)); // 4 frames
    auto &victim = sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr a = co_await ctx.sysAllocMemory(4 * 4096);
            for (int i = 0; i < 4; ++i)
                co_await ctx.store(a + i * 4096, i);
            co_await ctx.syscall([a](os::Kernel &k, os::Process &pr,
                                     os::SyscallControl &sc) {
                Tick lat = 0;
                sc.result = k.pinRange(pr, a, 4 * 4096, lat) ? 1 : 0;
            });
            // No frame can be freed now.
            Addr b = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(b, 1);
            ADD_FAILURE() << "allocation must have failed";
        });
    sys.runUntilAllDone(Tick(600) * tickSec);
    EXPECT_TRUE(victim.killed());
    EXPECT_EQ(victim.killReason(), "out of memory");
}
