/**
 * @file
 * The four Section 6 invariants, each forced deterministically:
 *
 *  I1 (atomicity): a context switch between the initiating STORE and
 *     LOAD invalidates the sequence; another process can never
 *     complete it, and the victim retries successfully.
 *  I2 (mapping consistency): evicting a real page removes its proxy
 *     mapping; a stale proxy access refaults and is re-created only
 *     against the valid mapping.
 *  I3 (content consistency): a proxy page is writable only while its
 *     real page is dirty; cleaning write-protects it; the next proxy
 *     write upgrades it again and re-dirties the page.
 *  I4 (register consistency): pages involved in a running or queued
 *     transfer are never evicted; a latched-but-unfired DESTINATION is
 *     cleared with an Inval and may then be evicted.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
fbConfig(std::uint64_t mem = 4 << 20)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = mem;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 512;
    fb.fbHeight = 512;
    cfg.node.devices.push_back(fb);
    return cfg;
}

} // namespace

// ------------------------------------------------------------------ I1

TEST(InvariantI1, SwitchBetweenStoreAndLoadForcesRetry)
{
    System sys(fbConfig());
    auto &node = sys.node(0);

    Addr victim_buf = 0;
    dma::Status first_load_status;
    bool victim_retried_ok = false;
    bool interloper_saw_clean_hw = false;

    // The victim STOREs its destination, then voluntarily yields —
    // modelling a context switch landing exactly inside the
    // two-reference window.
    node.kernel().spawn(
        "victim", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            victim_buf = buf;
            co_await ctx.store(buf, 0x42);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            co_await ctx.store(win, 4096); // STORE: DestLoaded
            co_await ctx.yield();          // context switch here!
            std::uint64_t w =
                co_await ctx.load(ctx.proxyAddr(buf, 0)); // LOAD
            first_load_status = dma::Status::unpack(w);
            // Per Section 5: seeing a failure, re-try the sequence.
            dma::Status st = co_await udmaStart(
                ctx, win, ctx.proxyAddr(buf, 0), 4096);
            victim_retried_ok = !st.initiationFailed;
            co_await udmaWait(ctx, ctx.proxyAddr(buf, 0));
        });

    // The interloper runs during the victim's window. Its status LOAD
    // must NOT fire the victim's latched destination.
    node.kernel().spawn(
        "interloper", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            std::uint64_t w =
                co_await ctx.load(ctx.proxyAddr(buf, 0));
            auto st = dma::Status::unpack(w);
            interloper_saw_clean_hw =
                st.initiationFailed && st.invalid;
            co_await ctx.yield();
        });

    sys.runUntilAllDone();

    EXPECT_TRUE(first_load_status.initiationFailed)
        << "the Inval must have wiped the half-initiated sequence";
    EXPECT_TRUE(victim_retried_ok);
    EXPECT_TRUE(interloper_saw_clean_hw)
        << "no cross-process completion of a STORE/LOAD pair";
    EXPECT_GE(node.controller(0)->invalsApplied(), 1u);
    EXPECT_EQ(node.controller(0)->transfersStarted(), 1u);
}

TEST(InvariantI1, TransferSurvivesDescheduling)
{
    // "Once started, a UDMA transfer continues regardless of whether
    // the process that started it is de-scheduled."
    System sys(fbConfig());
    auto &node = sys.node(0);
    bool other_ran_during = false;

    node.kernel().spawn(
        "starter", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 0x99);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            dma::Status st = co_await udmaStart(
                ctx, win, ctx.proxyAddr(buf, 0), 4096);
            EXPECT_FALSE(st.initiationFailed);
            co_await ctx.yield(); // deschedule mid-transfer
            co_await udmaWait(ctx, ctx.proxyAddr(buf, 0));
        });
    node.kernel().spawn(
        "other", [&](os::UserContext &ctx) -> sim::ProcTask {
            co_await ctx.compute(600); // 10 us while transfer runs
            other_ran_during = true;
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(other_ran_during);
    EXPECT_EQ(node.frameBuffer()->pixel(0, 0), 0x99u)
        << "the transfer completed despite the descheduling";
}

// ------------------------------------------------------------------ I2

TEST(InvariantI2, EvictionInvalidatesProxyMapping)
{
    System sys(fbConfig());
    auto &node = sys.node(0);
    bool checked = false;

    node.kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            auto &k = ctx.kernel();
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 0xAA);
            // Touch the proxy page so the mapping exists.
            (void)co_await ctx.load(ctx.proxyAddr(buf, 0));
            auto &pt = ctx.process().pageTable();
            std::uint64_t proxy_vpn =
                k.layout().pageOf(ctx.proxyAddr(buf, 0));
            EXPECT_NE(pt.lookup(proxy_vpn), nullptr);

            // Force the real page out.
            Tick lat = 0;
            int guard = 0;
            while (pt.lookup(k.layout().pageOf(buf)) != nullptr
                   && guard++ < 64) {
                EXPECT_TRUE(k.evictOneFrame(lat));
            }
            // I2: the proxy mapping died with the real one.
            EXPECT_EQ(pt.lookup(proxy_vpn), nullptr);

            // A fresh proxy access refaults both back in, correctly.
            (void)co_await ctx.load(ctx.proxyAddr(buf, 0));
            EXPECT_NE(pt.lookup(proxy_vpn), nullptr);
            std::uint64_t v = co_await ctx.load(buf);
            EXPECT_EQ(v, 0xAAu);
            checked = true;
        });
    sys.runUntilAllDone(Tick(60) * tickSec);
    EXPECT_TRUE(checked);
    EXPECT_GT(node.kernel().proxyFaults(), 1u);
}

TEST(InvariantI2, ProxyFaultPagesInTheRealPageFirst)
{
    // Section 6, case 2: "vmem_page is valid but is not currently in
    // core. The kernel first pages in vmem_page."
    System sys(fbConfig());
    bool checked = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            auto &k = ctx.kernel();
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 0x77);
            auto &pt = ctx.process().pageTable();
            Tick lat = 0;
            int guard = 0;
            while (pt.lookup(k.layout().pageOf(buf)) != nullptr
                   && guard++ < 64) {
                EXPECT_TRUE(k.evictOneFrame(lat));
            }
            std::uint64_t swap_reads_before =
                k.backingStore().pageReads();
            // Proxy access with the real page swapped out.
            (void)co_await ctx.load(ctx.proxyAddr(buf, 0));
            EXPECT_GT(k.backingStore().pageReads(), swap_reads_before)
                << "the fault handler must swap the real page in";
            EXPECT_NE(pt.lookup(k.layout().pageOf(buf)), nullptr);
            checked = true;
        });
    sys.runUntilAllDone(Tick(60) * tickSec);
    EXPECT_TRUE(checked);
}

// ------------------------------------------------------------------ I3

TEST(InvariantI3, ProxyWritableImpliesDirty)
{
    System sys(fbConfig());
    bool checked = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            auto &k = ctx.kernel();
            auto &pt = ctx.process().pageTable();
            Addr buf = co_await ctx.sysAllocMemory(4096);
            // Touch read-only-ish: a load faults the page in clean.
            (void)co_await ctx.load(buf);
            std::uint64_t real_vpn = k.layout().pageOf(buf);
            std::uint64_t proxy_vpn =
                k.layout().pageOf(ctx.proxyAddr(buf, 0));

            // Create the proxy mapping with a read access: the page
            // is clean, so the proxy must be read-only.
            (void)co_await ctx.load(ctx.proxyAddr(buf, 0));
            EXPECT_NE(pt.lookup(proxy_vpn), nullptr);
            EXPECT_FALSE(pt.lookup(proxy_vpn)->writable);
            EXPECT_FALSE(pt.lookup(real_vpn)->dirty);

            // A proxy STORE takes the upgrade path: real page dirty,
            // proxy writable.
            std::uint64_t upgrades = k.proxyWriteUpgrades();
            co_await ctx.store(ctx.proxyAddr(buf, 0), -1); // Inval, harmless
            EXPECT_EQ(k.proxyWriteUpgrades(), upgrades + 1);
            EXPECT_TRUE(pt.lookup(proxy_vpn)->writable);
            EXPECT_TRUE(pt.lookup(real_vpn)->dirty);
            checked = true;
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(checked);
}

TEST(InvariantI3, CleaningWriteProtectsProxy)
{
    System sys(fbConfig());
    bool checked = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            auto &k = ctx.kernel();
            auto &pt = ctx.process().pageTable();
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1); // dirty
            co_await ctx.store(ctx.proxyAddr(buf, 0), -1); // writable proxy
            std::uint64_t real_vpn = k.layout().pageOf(buf);
            std::uint64_t proxy_vpn =
                k.layout().pageOf(ctx.proxyAddr(buf, 0));
            EXPECT_TRUE(pt.lookup(proxy_vpn)->writable);

            // The daemon cleans the page.
            Tick lat = 0;
            EXPECT_TRUE(k.cleanPage(ctx.process(), buf, lat));
            EXPECT_FALSE(pt.lookup(real_vpn)->dirty);
            EXPECT_FALSE(pt.lookup(proxy_vpn)->writable)
                << "I3: clean page => write-protected proxy";

            // The next proxy write re-upgrades.
            co_await ctx.store(ctx.proxyAddr(buf, 0), -1);
            EXPECT_TRUE(pt.lookup(real_vpn)->dirty);
            EXPECT_TRUE(pt.lookup(proxy_vpn)->writable);
            checked = true;
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(checked);
}

TEST(InvariantI3, ReadOnlyRegionCannotBeDmaDestination)
{
    // "a read-only page can be used as the source of a transfer but
    // not as the destination."
    System sys(fbConfig());
    auto &bad = sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr ro = co_await ctx.sysAllocMemory(4096, false);
            (void)co_await ctx.load(ro); // page it in
            // Proxy STORE names it as a destination: kill.
            co_await ctx.store(ctx.proxyAddr(ro, 0), 256);
            ADD_FAILURE() << "unreachable";
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(bad.killed());
    EXPECT_EQ(bad.killReason(), "proxy write to read-only memory");
}

TEST(InvariantI3, ReadOnlyPageWorksAsDmaSource)
{
    System sys(fbConfig());
    bool sent = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr ro = co_await ctx.sysAllocMemory(4096, false);
            (void)co_await ctx.load(ro);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            dma::Status st = co_await udmaStart(
                ctx, win, ctx.proxyAddr(ro, 0), 512);
            EXPECT_FALSE(st.initiationFailed);
            co_await udmaWait(ctx, ctx.proxyAddr(ro, 0));
            sent = true;
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(sent);
}

TEST(InvariantI3, CleanRefusedWhileDmaInProgress)
{
    // The Section 6 race rule: never clear the dirty bit while a DMA
    // to the page is in progress.
    System sys(fbConfig());
    bool checked = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            auto &k = ctx.kernel();
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 5);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            dma::Status st = co_await udmaStart(
                ctx, win, ctx.proxyAddr(buf, 0), 4096);
            EXPECT_FALSE(st.initiationFailed);
            // Transfer in flight: cleaning must refuse.
            Tick lat = 0;
            EXPECT_FALSE(k.cleanPage(ctx.process(), buf, lat));
            co_await udmaWait(ctx, ctx.proxyAddr(buf, 0));
            // Idle again: cleaning succeeds.
            EXPECT_TRUE(k.cleanPage(ctx.process(), buf, lat));
            checked = true;
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(checked);
}

// ------------------------------------------------------------------ I4

TEST(InvariantI4, BusyPagesAreNeverEvicted)
{
    System sys(fbConfig(64 << 10)); // 16 frames
    bool checked = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            auto &k = ctx.kernel();
            auto &pt = ctx.process().pageTable();
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 0xD00D);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            dma::Status st = co_await udmaStart(
                ctx, win, ctx.proxyAddr(buf, 0), 4096);
            EXPECT_FALSE(st.initiationFailed);

            // Try hard to evict while the transfer runs: the source
            // page must survive every attempt.
            std::uint64_t vpn = k.layout().pageOf(buf);
            Addr frame = pt.lookup(vpn)->frameAddr;
            std::uint64_t skips_before = k.evictionI4Skips();
            Tick lat = 0;
            for (int i = 0; i < 8; ++i)
                (void)k.evictOneFrame(lat);
            EXPECT_NE(pt.lookup(vpn), nullptr);
            EXPECT_EQ(pt.lookup(vpn)->frameAddr, frame);
            EXPECT_GT(k.evictionI4Skips(), skips_before)
                << "the daemon must have skipped the busy page";
            co_await udmaWait(ctx, ctx.proxyAddr(buf, 0));
            checked = true;
        });
    sys.runUntilAllDone(Tick(60) * tickSec);
    EXPECT_TRUE(checked);
    EXPECT_EQ(sys.node(0).frameBuffer()->pixel(0, 0), 0xD00Du);
}

TEST(InvariantI4, DestLoadedPageClearedWithInvalThenEvictable)
{
    System sys(fbConfig(64 << 10));
    bool checked = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            auto &k = ctx.kernel();
            auto *ctrl = k.controllers().front();
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1);
            // Latch the page as a DMA *destination* (device-to-memory)
            // without firing the transfer.
            co_await ctx.store(ctx.proxyAddr(buf, 0), 4096);
            Addr page;
            EXPECT_TRUE(ctrl->destLoadedPage(page));

            // Eviction may clear the latched DESTINATION with an
            // Inval (Section 6) and then treat the page as free.
            std::uint64_t invals = ctrl->invalsApplied();
            Tick lat = 0;
            int guard = 0;
            auto &pt = ctx.process().pageTable();
            while (pt.lookup(k.layout().pageOf(buf)) && guard++ < 64)
                EXPECT_TRUE(k.evictOneFrame(lat));
            EXPECT_GT(ctrl->invalsApplied(), invals);
            EXPECT_FALSE(ctrl->destLoadedPage(page));
            checked = true;
        });
    sys.runUntilAllDone(Tick(60) * tickSec);
    EXPECT_TRUE(checked);
}
