/**
 * @file
 * Unit tests for the kernel: processes, scheduling, syscalls, faults,
 * and the backdoor.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
plainConfig(std::uint64_t mem = 4 << 20)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = mem;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    cfg.node.devices.push_back(fb);
    return cfg;
}

} // namespace

TEST(Kernel, SpawnRunsToCompletion)
{
    System sys(plainConfig());
    int order = 0;
    sys.node(0).kernel().spawn("p", [&](os::UserContext &ctx)
                                        -> sim::ProcTask {
        co_await ctx.compute(100);
        order = 1;
    });
    sys.runUntilAllDone();
    EXPECT_EQ(order, 1);
    EXPECT_TRUE(sys.node(0).kernel().allProcessesDone());
}

TEST(Kernel, RoundRobinInterleavesProcesses)
{
    auto cfg = plainConfig();
    cfg.params.quantumUs = 50.0;
    System sys(cfg);
    std::vector<int> trace;
    for (int id = 0; id < 2; ++id) {
        sys.node(0).kernel().spawn(
            "p" + std::to_string(id),
            [&, id](os::UserContext &ctx) -> sim::ProcTask {
                for (int i = 0; i < 5; ++i) {
                    co_await ctx.compute(6000); // 100 us each
                    trace.push_back(id);
                }
            });
    }
    sys.runUntilAllDone();
    ASSERT_EQ(trace.size(), 10u);
    // With a 50 us quantum and 100 us work items, the processes must
    // interleave rather than run back-to-back.
    bool interleaved = false;
    for (std::size_t i = 1; i < trace.size(); ++i)
        interleaved |= trace[i] != trace[i - 1];
    EXPECT_TRUE(interleaved);
    EXPECT_GT(sys.node(0).kernel().contextSwitches(), 2u);
}

TEST(Kernel, YieldRotatesReadyQueue)
{
    System sys(plainConfig());
    std::vector<int> trace;
    for (int id = 0; id < 3; ++id) {
        sys.node(0).kernel().spawn(
            "p" + std::to_string(id),
            [&, id](os::UserContext &ctx) -> sim::ProcTask {
                for (int i = 0; i < 2; ++i) {
                    trace.push_back(id);
                    co_await ctx.yield();
                }
            });
    }
    sys.runUntilAllDone();
    EXPECT_EQ(trace, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Kernel, PreemptionCountsAreTracked)
{
    auto cfg = plainConfig();
    cfg.params.quantumUs = 20.0;
    System sys(cfg);
    auto &hog = sys.node(0).kernel().spawn(
        "hog", [&](os::UserContext &ctx) -> sim::ProcTask {
            for (int i = 0; i < 50; ++i)
                co_await ctx.compute(1000);
        });
    sys.node(0).kernel().spawn(
        "other", [&](os::UserContext &ctx) -> sim::ProcTask {
            for (int i = 0; i < 50; ++i)
                co_await ctx.compute(1000);
        });
    sys.runUntilAllDone();
    EXPECT_GT(hog.preemptions(), 0u);
    EXPECT_GT(hog.cpuTicks(), 0u);
}

TEST(Kernel, SegfaultKillsProcessOnly)
{
    System sys(plainConfig());
    auto &bad = sys.node(0).kernel().spawn(
        "bad", [&](os::UserContext &ctx) -> sim::ProcTask {
            co_await ctx.store(0x900000, 1); // never allocated
            ADD_FAILURE() << "must not get here";
        });
    bool good_ran = false;
    sys.node(0).kernel().spawn(
        "good", [&](os::UserContext &ctx) -> sim::ProcTask {
            co_await ctx.compute(10);
            good_ran = true;
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(bad.killed());
    EXPECT_EQ(bad.killReason(), "segmentation fault");
    EXPECT_TRUE(good_ran);
    EXPECT_EQ(sys.node(0).kernel().processesKilled(), 1u);
}

TEST(Kernel, WriteToReadOnlyRegionKills)
{
    System sys(plainConfig());
    auto &bad = sys.node(0).kernel().spawn(
        "bad", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr ro = co_await ctx.sysAllocMemory(4096, false);
            (void)co_await ctx.load(ro); // reads are fine
            co_await ctx.store(ro, 1);
            ADD_FAILURE() << "must not get here";
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(bad.killed());
    EXPECT_EQ(bad.killReason(), "write to read-only page");
}

TEST(Kernel, RegionsAreIsolatedByGuardPages)
{
    System sys(plainConfig());
    auto &bad = sys.node(0).kernel().spawn(
        "bad", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr a = co_await ctx.sysAllocMemory(4096);
            Addr b = co_await ctx.sysAllocMemory(4096);
            EXPECT_GE(b, a + 2 * 4096) << "guard page between regions";
            co_await ctx.store(a + 4096, 1); // the guard page
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(bad.killed());
}

TEST(Kernel, SyscallResultAndLatency)
{
    System sys(plainConfig());
    std::uint64_t got = 0;
    Tick before = 0, after = 0;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            before = ctx.kernel().eq().now();
            got = co_await ctx.syscall([](os::Kernel &k, os::Process &,
                                          os::SyscallControl &sc) {
                sc.result = 0xFEED;
                sc.extraLatency = k.params().instrTicks(6000);
            });
            after = ctx.kernel().eq().now();
        });
    sys.runUntilAllDone();
    EXPECT_EQ(got, 0xFEEDu);
    // 300 trap + 6000 body instructions at 60 MHz > 100 us.
    EXPECT_GT(after - before, 100 * tickUs);
}

TEST(Kernel, BlockingSyscallAndWake)
{
    System sys(plainConfig());
    os::Process *blocked = nullptr;
    std::uint64_t got = 0;
    auto &p = sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            got = co_await ctx.syscall(
                [&](os::Kernel &k, os::Process &proc,
                    os::SyscallControl &sc) {
                    sc.blocks = true;
                    blocked = &proc;
                    k.eq().scheduleIn(50 * tickUs, "wake", [&k, &proc] {
                        k.wakeWithResult(proc, 0xCAFE);
                    });
                });
        });
    sys.runUntilAllDone();
    EXPECT_EQ(blocked, &p);
    EXPECT_EQ(got, 0xCAFEu);
    EXPECT_GT(sys.eq().now(), 50 * tickUs);
}

TEST(Kernel, WakeBeforeBlockIsNotLost)
{
    // The classic sleep/wakeup race: the "interrupt" fires while the
    // blocking syscall's kernel latency is still elapsing. The wake
    // must be remembered, not dropped.
    System sys(plainConfig());
    std::uint64_t got = 0;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            got = co_await ctx.syscall(
                [&](os::Kernel &k, os::Process &proc,
                    os::SyscallControl &sc) {
                    sc.blocks = true;
                    // Lots of kernel work before the block lands...
                    sc.extraLatency = k.params().instrTicks(60000);
                    // ...while the completion fires almost at once.
                    k.eq().scheduleIn(1 * tickUs, "early-wake",
                                      [&k, &proc] {
                                          k.wakeWithResult(proc,
                                                           0xFA57);
                                      });
                });
        });
    sys.runUntilAllDone(Tick(10) * tickSec);
    EXPECT_EQ(got, 0xFA57u);
    EXPECT_TRUE(sys.node(0).kernel().allProcessesDone())
        << "a lost wakeup would leave the process blocked forever";
}

TEST(Kernel, MapDeviceProxyValidatesExtent)
{
    System sys(plainConfig());
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            // The 640x480 frame buffer is 1.2 MB = 300 pages.
            Addr ok = co_await ctx.sysMapDeviceProxy(0, 0, 10, true);
            EXPECT_NE(ok, 0u);
            Addr beyond =
                co_await ctx.sysMapDeviceProxy(0, 299, 10, true);
            EXPECT_EQ(beyond, 0u) << "mapping past the device extent";
            Addr nodev = co_await ctx.sysMapDeviceProxy(7, 0, 1, true);
            EXPECT_EQ(nodev, 0u) << "no such device slot";
        });
    sys.runUntilAllDone();
}

TEST(Kernel, PokePeekBackdoorRoundTrip)
{
    System sys(plainConfig());
    Addr buf = 0;
    auto &p = sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            buf = co_await ctx.sysAllocMemory(3 * 4096);
        });
    sys.runUntilAllDone();
    std::vector<std::uint8_t> in(5000);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = std::uint8_t(i * 3);
    auto &kernel = sys.node(0).kernel();
    kernel.pokeBytes(p, buf + 100, in.data(), in.size());
    std::vector<std::uint8_t> out(in.size());
    kernel.peekBytes(p, buf + 100, out.data(), out.size());
    EXPECT_EQ(in, out);
}

TEST(Kernel, ProcessBodyExceptionSurfacesViaRethrow)
{
    System sys(plainConfig());
    sys.node(0).kernel().spawn(
        "thrower", [&](os::UserContext &ctx) -> sim::ProcTask {
            co_await ctx.compute(10);
            throw std::runtime_error("user bug");
        });
    EXPECT_THROW(sys.runUntilAllDone(), std::runtime_error);
}

TEST(Kernel, FindProcessAndPids)
{
    System sys(plainConfig());
    auto &a = sys.node(0).kernel().spawn(
        "a", [](os::UserContext &ctx) -> sim::ProcTask {
            co_await ctx.compute(1);
        });
    auto &b = sys.node(0).kernel().spawn(
        "b", [](os::UserContext &ctx) -> sim::ProcTask {
            co_await ctx.compute(1);
        });
    EXPECT_NE(a.pid(), b.pid());
    EXPECT_EQ(sys.node(0).kernel().findProcess(a.pid()), &a);
    EXPECT_EQ(sys.node(0).kernel().findProcess(999), nullptr);
    sys.runUntilAllDone();
    EXPECT_EQ(a.state(), os::ProcState::Zombie);
}
