/**
 * @file
 * The Section 6 alternative content-consistency scheme: "maintain
 * dirty bits on all of the proxy pages, and ... consider vmem_page
 * dirty if either vmem_page or PROXY(vmem_page) is dirty. This
 * approach is conceptually simpler, but requires more changes to the
 * paging code."
 *
 * Both schemes must preserve content across device-to-memory DMA and
 * paging; the alternative does it without any proxy write-protect
 * faults.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
fbConfig()
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 128;
    fb.fbHeight = 128;
    cfg.node.devices.push_back(fb);
    return cfg;
}

} // namespace

TEST(I3Policy, AlternativeGrantsWritableProxiesUpFront)
{
    System sys(fbConfig());
    sys.node(0).kernel().setI3Policy(os::I3Policy::ProxyDirtyBits);
    bool checked = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            auto &k = ctx.kernel();
            auto &pt = ctx.process().pageTable();
            Addr buf = co_await ctx.sysAllocMemory(4096);
            (void)co_await ctx.load(buf); // clean page
            (void)co_await ctx.load(ctx.proxyAddr(buf, 0));
            std::uint64_t proxy_vpn =
                k.layout().pageOf(ctx.proxyAddr(buf, 0));
            // Unlike the main scheme, the proxy mapping is writable
            // even though the real page is clean...
            EXPECT_TRUE(pt.lookup(proxy_vpn)->writable);
            // ...so a proxy STORE takes no protection fault at all.
            std::uint64_t upgrades = k.proxyWriteUpgrades();
            co_await ctx.store(ctx.proxyAddr(buf, 0), -1); // Inval
            EXPECT_EQ(k.proxyWriteUpgrades(), upgrades);
            // The proxy PTE's own (hardware) dirty bit carries the
            // information instead.
            EXPECT_TRUE(pt.lookup(proxy_vpn)->dirty);
            checked = true;
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(checked);
}

TEST(I3Policy, AlternativePreservesDeviceWritesAcrossPaging)
{
    // Device -> memory DMA, then force the page out and back in: the
    // device's data must survive, meaning the paging code treated the
    // page as dirty because of the *proxy* dirty bit.
    System sys(fbConfig());
    sys.node(0).kernel().setI3Policy(os::I3Policy::ProxyDirtyBits);
    std::uint64_t readback = 0;
    bool done = false;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            auto &k = ctx.kernel();
            auto &pt = ctx.process().pageTable();
            // Paint the frame buffer via host access.
            Addr buf = co_await ctx.sysAllocMemory(4096);
            (void)co_await ctx.load(buf); // page in, CLEAN
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            std::uint64_t n = co_await udmaTransferFromDevice(
                ctx, 0, buf, win, 256, true);
            EXPECT_EQ(n, 1u);
            // The REAL pte may still be clean; only the proxy pte is
            // dirty. Force the page out.
            std::uint64_t vpn = k.layout().pageOf(buf);
            Tick lat = 0;
            int guard = 0;
            while (pt.lookup(vpn) != nullptr && guard++ < 64)
                EXPECT_TRUE(k.evictOneFrame(lat));
            // Page back in: the DMA'd data must have been written to
            // backing store by the policy-aware cleaner.
            readback = co_await ctx.load(buf);
            done = true;
        });
    sys.node(0)
        .frameBuffer()
        ->devicePush(0, reinterpret_cast<const std::uint8_t *>(
                            "\xEF\xBE\xAD\xDE\x00\x00\x00\x00"),
                     8);
    sys.runUntilAllDone(Tick(120) * tickSec);
    EXPECT_TRUE(done);
    EXPECT_EQ(readback & 0xFFFFFFFFu, 0xDEADBEEFu)
        << "device data lost across page-out: the alternative I3 "
           "scheme failed to see the proxy dirty bit";
}

TEST(I3Policy, BothSchemesDeliverIdenticalContent)
{
    for (auto policy : {os::I3Policy::WriteProtectProxy,
                        os::I3Policy::ProxyDirtyBits}) {
        System sys(fbConfig());
        sys.node(0).kernel().setI3Policy(policy);
        std::uint64_t sum = 0;
        sys.node(0).kernel().spawn(
            "p", [&](os::UserContext &ctx) -> sim::ProcTask {
                Addr buf = co_await ctx.sysAllocMemory(4096);
                (void)co_await ctx.load(buf);
                Addr win =
                    co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
                co_await udmaTransferFromDevice(ctx, 0, buf, win, 512,
                                                true);
                for (unsigned i = 0; i < 64; ++i)
                    sum += co_await ctx.load(buf + i * 8);
            });
        // Pre-paint the frame buffer identically for both runs.
        std::vector<std::uint8_t> pix(512);
        for (unsigned i = 0; i < 512; ++i)
            pix[i] = std::uint8_t(i * 3 + 1);
        sys.node(0).frameBuffer()->devicePush(0, pix.data(), 512);
        sys.runUntilAllDone(Tick(60) * tickSec);

        std::uint64_t expect = 0;
        for (unsigned i = 0; i < 64; ++i) {
            std::uint64_t w;
            std::memcpy(&w, pix.data() + i * 8, 8);
            expect += w;
        }
        EXPECT_EQ(sum, expect)
            << "policy " << int(policy) << " corrupted the data";
    }
}
