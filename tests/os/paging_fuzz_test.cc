/**
 * @file
 * Property test: the VM system against a flat reference model.
 *
 * A process performs thousands of random stores/loads over a working
 * set several times larger than physical memory, with random forced
 * evictions and page cleanings injected between operations. A plain
 * host-side map of va -> value is the oracle: whatever was stored
 * must read back, through any amount of page-out/page-in, proxy
 * invalidation, and dirty/clean cycling. Parameterized over seeds and
 * memory sizes.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/system.hh"
#include "sim/random.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

struct FuzzParam
{
    std::uint64_t seed;
    std::uint64_t memKb; ///< physical memory
};

class PagingFuzz : public ::testing::TestWithParam<FuzzParam>
{};

} // namespace

TEST_P(PagingFuzz, ContentSurvivesThrashing)
{
    const auto param = GetParam();
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = param.memKb << 10;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    cfg.node.devices.push_back(fb);
    System sys(cfg);

    constexpr std::uint64_t working_pages = 24;
    bool done = false;

    sys.node(0).kernel().spawn(
        "fuzzer", [&](os::UserContext &ctx) -> sim::ProcTask {
            sim::Random rng(param.seed);
            auto &k = ctx.kernel();
            Addr buf =
                co_await ctx.sysAllocMemory(working_pages * 4096);
            std::map<Addr, std::uint64_t> oracle;

            for (int step = 0; step < 1200; ++step) {
                std::uint64_t dice = rng.below(100);
                Addr va = buf
                          + rng.below(working_pages) * 4096
                          + rng.below(512) * 8;
                if (dice < 45) {
                    std::uint64_t v = rng.next();
                    co_await ctx.store(va, v);
                    oracle[va] = v;
                } else if (dice < 85) {
                    std::uint64_t v = co_await ctx.load(va);
                    auto it = oracle.find(va);
                    std::uint64_t expect =
                        it == oracle.end() ? 0 : it->second;
                    EXPECT_EQ(v, expect)
                        << "va=" << va << " step=" << step
                        << " seed=" << param.seed;
                } else if (dice < 95) {
                    Tick lat = 0;
                    (void)k.evictOneFrame(lat);
                } else {
                    Tick lat = 0;
                    (void)k.cleanPage(ctx.process(), va, lat);
                }
            }

            // Full sweep at the end.
            for (const auto &[va, v] : oracle) {
                std::uint64_t got = co_await ctx.load(va);
                EXPECT_EQ(got, v) << "final sweep va=" << va;
            }
            done = true;
        });

    sys.runUntilAllDone(Tick(3000) * tickSec);
    EXPECT_TRUE(done);
    // With the working set over-committed, paging must have happened.
    if (param.memKb < working_pages * 4) {
        EXPECT_GT(sys.node(0).kernel().evictions(), 0u);
        EXPECT_GT(sys.node(0).kernel().backingStore().pageReads(),
                  0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, PagingFuzz,
    ::testing::Values(FuzzParam{1, 48}, FuzzParam{2, 48},
                      FuzzParam{3, 64}, FuzzParam{4, 32},
                      FuzzParam{5, 256}),
    [](const auto &info) {
        return "seed" + std::to_string(info.param.seed) + "_mem"
               + std::to_string(info.param.memKb) + "k";
    });
