/**
 * @file
 * End-to-end tests for tools/shrimp_lint: every rule detects its
 * seeded fixture violations at the expected lines, inline
 * suppressions silence exactly their rule (a wrong rule id must NOT
 * suppress), and the baseline ratchet grandfathers, fails on growth,
 * and reports stale entries when a file comes clean.
 *
 * The harness shells out to the real binary over the fixture corpus
 * and parses --json output with the tests' mini_json parser, so the
 * exact CLI contract the run_checks.sh gate depends on is what gets
 * exercised. Paths are baked in at configure time
 * (SHRIMP_LINT_BIN/FIXTURES/REPO compile definitions).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "../support/mini_json.hh"

namespace
{

std::string
env(const char *name)
{
    std::string n = name;
    if (n == "SHRIMP_LINT_BIN")
        return SHRIMP_LINT_BIN;
    if (n == "SHRIMP_LINT_FIXTURES")
        return SHRIMP_LINT_FIXTURES;
    if (n == "SHRIMP_LINT_REPO")
        return SHRIMP_LINT_REPO;
    ADD_FAILURE() << "unknown path key " << n;
    return "";
}

struct RunResult
{
    int exitCode = -1;
    std::string out;
    minijson::Value json;
    bool parsed = false;
};

/** Run `shrimp_lint --json <args>` and parse the report. */
RunResult
runLint(const std::string &args)
{
    RunResult r;
    std::string cmd = env("SHRIMP_LINT_BIN") + " --json " + args
                      + " 2>/dev/null";
    FILE *p = popen(cmd.c_str(), "r");
    EXPECT_NE(p, nullptr) << "popen failed: " << cmd;
    if (!p)
        return r;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof buf, p)) > 0)
        r.out.append(buf, n);
    int status = pclose(p);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    std::string err;
    r.parsed = minijson::parse(r.out, r.json, &err);
    EXPECT_TRUE(r.parsed) << "bad JSON (" << err << "):\n" << r.out;
    return r;
}

/** The (rule, line) pairs reported for @p file. */
std::set<std::pair<std::string, int>>
findingsFor(const RunResult &r, const std::string &file)
{
    std::set<std::pair<std::string, int>> out;
    const minijson::Value *arr = r.json.find("findings");
    if (!arr || !arr->isArray())
        return out;
    for (const auto &f : arr->array) {
        const minijson::Value *ff = f.find("file");
        const minijson::Value *rule = f.find("rule");
        const minijson::Value *line = f.find("line");
        if (ff && rule && line && ff->str == file)
            out.insert({rule->str, int(line->number)});
    }
    return out;
}

/** Fixture scan: every directory-scoped rule applies to the corpus. */
RunResult
scanFixture(const std::string &file, const std::string &extra = "")
{
    return runLint("--root=" + env("SHRIMP_LINT_FIXTURES")
                   + " --digest-dir=. --state-dir=. " + extra + " "
                   + file);
}

using Expected = std::set<std::pair<std::string, int>>;

TEST(LintRules, D1WallClockSitesAndAnnotatedSiteSuppressed)
{
    auto r = scanFixture("d1_wall_clock.cc");
    EXPECT_EQ(r.exitCode, 1);
    Expected want = {{"D1", 9}, {"D1", 16}, {"D1", 23}};
    EXPECT_EQ(findingsFor(r, "d1_wall_clock.cc"), want);
}

TEST(LintRules, D1AllowlistedFileIsExempt)
{
    // The same file scanned as part of the wall-clock allowlist (the
    // observability set) reports nothing.
    auto r = scanFixture("d1_wall_clock.cc",
                         "--wallclock-allow=d1_wall_clock.cc");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_TRUE(findingsFor(r, "d1_wall_clock.cc").empty()) << r.out;
}

TEST(LintRules, D2UnseededRandomness)
{
    auto r = scanFixture("d2_randomness.cc");
    EXPECT_EQ(r.exitCode, 1);
    Expected want = {{"D2", 8}, {"D2", 14}, {"D2", 21}, {"D2", 28}};
    EXPECT_EQ(findingsFor(r, "d2_randomness.cc"), want);
}

TEST(LintRules, D3UnorderedIterationInDigestDir)
{
    auto r = scanFixture("d3_unordered_iter.cc");
    EXPECT_EQ(r.exitCode, 1);
    Expected want = {{"D3", 16}, {"D3", 35}};
    EXPECT_EQ(findingsFor(r, "d3_unordered_iter.cc"), want);
}

TEST(LintRules, D3SilentOutsideDigestDirs)
{
    // Without the digest-dir override the fixture directory is not
    // digest-affecting, so hash-order iteration is tolerated there.
    auto r = runLint("--root=" + env("SHRIMP_LINT_FIXTURES")
                     + " --state-dir=. d3_unordered_iter.cc");
    EXPECT_EQ(r.exitCode, 0) << r.out;
}

TEST(LintRules, D4PointerHashingAndCasts)
{
    auto r = scanFixture("d4_pointer_order.cc");
    EXPECT_EQ(r.exitCode, 1);
    Expected want = {{"D4", 12}, {"D4", 18}};
    EXPECT_EQ(findingsFor(r, "d4_pointer_order.cc"), want);
}

TEST(LintRules, S1MutableStaticState)
{
    auto r = scanFixture("s1_static_state.cc");
    EXPECT_EQ(r.exitCode, 1);
    Expected want = {{"S1", 5}, {"S1", 7}, {"S1", 18}, {"S1", 32}};
    EXPECT_EQ(findingsFor(r, "s1_static_state.cc"), want);
}

TEST(LintRules, S2EventLabelLifetime)
{
    auto r = scanFixture("s2_event_label.cc");
    EXPECT_EQ(r.exitCode, 1);
    Expected want = {{"S2", 17}, {"S2", 19}, {"S2", 21}, {"S2", 23}};
    EXPECT_EQ(findingsFor(r, "s2_event_label.cc"), want);
}

TEST(LintRules, CleanFileIsClean)
{
    auto r = scanFixture("clean.cc");
    EXPECT_EQ(r.exitCode, 0) << r.out;
    const minijson::Value *clean = r.json.find("clean");
    ASSERT_NE(clean, nullptr);
    EXPECT_EQ(clean->kind, minijson::Value::Kind::Bool);
    EXPECT_TRUE(clean->boolean);
}

// ------------------------------------------------- suppressions

TEST(LintSuppressions, CorrectRuleIdSuppresses)
{
    auto r = scanFixture("suppress_ok.cc");
    EXPECT_EQ(r.exitCode, 0) << r.out;
    EXPECT_TRUE(findingsFor(r, "suppress_ok.cc").empty());
}

TEST(LintSuppressions, WrongRuleIdDoesNotSuppress)
{
    auto r = scanFixture("suppress_wrong_rule.cc");
    EXPECT_EQ(r.exitCode, 1);
    Expected want = {{"D1", 9}};
    EXPECT_EQ(findingsFor(r, "suppress_wrong_rule.cc"), want);
}

TEST(LintSuppressions, MalformedDirectivesAreFindings)
{
    auto r = scanFixture("suppress_malformed.cc");
    EXPECT_EQ(r.exitCode, 1);
    Expected want = {{"LINT", 7}, {"LINT", 15}};
    EXPECT_EQ(findingsFor(r, "suppress_malformed.cc"), want);
}

// ---------------------------------------------------- baseline

class LintBaseline : public ::testing::Test
{
  protected:
    std::string
    writeBaseline(const std::string &body)
    {
        std::string path = ::testing::TempDir() + "lint_baseline_"
                           + std::to_string(counter_++) + ".json";
        std::ofstream out(path);
        out << body;
        return path;
    }

    static int counter_;
};

int LintBaseline::counter_ = 0;

TEST_F(LintBaseline, ExactEntrySuppressesAndReportsBaselined)
{
    std::string b = writeBaseline(R"({
      "findings": [
        {"file": "d1_wall_clock.cc", "rule": "D1", "count": 3,
         "reason": "fixture grandfathering"}
      ]
    })");
    auto r = scanFixture("d1_wall_clock.cc", "--baseline=" + b);
    EXPECT_EQ(r.exitCode, 0) << r.out;
    EXPECT_TRUE(findingsFor(r, "d1_wall_clock.cc").empty());
    const minijson::Value *bl = r.json.find("baselined");
    ASSERT_NE(bl, nullptr);
    EXPECT_EQ(int(bl->number), 3);
}

TEST_F(LintBaseline, RatchetFailsWhenFindingsGrowPastCount)
{
    std::string b = writeBaseline(R"({
      "findings": [
        {"file": "d1_wall_clock.cc", "rule": "D1", "count": 2,
         "reason": "only two grandfathered"}
      ]
    })");
    auto r = scanFixture("d1_wall_clock.cc", "--baseline=" + b);
    EXPECT_EQ(r.exitCode, 1);
    // Two of the three findings are absorbed; one fails the gate.
    EXPECT_EQ(findingsFor(r, "d1_wall_clock.cc").size(), 1u);
}

TEST_F(LintBaseline, WrongRuleEntryDoesNotSuppress)
{
    std::string b = writeBaseline(R"({
      "findings": [
        {"file": "d1_wall_clock.cc", "rule": "D2", "count": 3,
         "reason": "names the wrong rule on purpose"}
      ]
    })");
    auto r = scanFixture("d1_wall_clock.cc", "--baseline=" + b);
    EXPECT_EQ(r.exitCode, 1);
    // All three D1 findings survive, and the D2 entry is stale.
    EXPECT_EQ(findingsFor(r, "d1_wall_clock.cc").size(), 3u);
    const minijson::Value *stale = r.json.find("stale_baseline");
    ASSERT_NE(stale, nullptr);
    ASSERT_TRUE(stale->isArray());
    EXPECT_EQ(stale->array.size(), 1u);
}

TEST_F(LintBaseline, EntryForNowCleanFileIsStale)
{
    std::string b = writeBaseline(R"({
      "findings": [
        {"file": "clean.cc", "rule": "D1", "count": 1,
         "reason": "this file was fixed since"}
      ]
    })");
    auto r = scanFixture("clean.cc", "--baseline=" + b);
    EXPECT_EQ(r.exitCode, 1) << "stale baseline must fail the gate";
    const minijson::Value *stale = r.json.find("stale_baseline");
    ASSERT_NE(stale, nullptr);
    ASSERT_TRUE(stale->isArray());
    ASSERT_EQ(stale->array.size(), 1u);
    const minijson::Value *file = stale->array[0].find("file");
    ASSERT_NE(file, nullptr);
    EXPECT_EQ(file->str, "clean.cc");
    const minijson::Value *actual = stale->array[0].find("actual");
    ASSERT_NE(actual, nullptr);
    EXPECT_EQ(int(actual->number), 0);
}

TEST_F(LintBaseline, EntryWithoutReasonIsRejected)
{
    std::string b = writeBaseline(R"({
      "findings": [
        {"file": "clean.cc", "rule": "D1", "count": 1, "reason": ""}
      ]
    })");
    RunResult r;
    std::string cmd = env("SHRIMP_LINT_BIN") + " --root="
                      + env("SHRIMP_LINT_FIXTURES") + " --baseline="
                      + b + " clean.cc 2>&1";
    FILE *p = popen(cmd.c_str(), "r");
    ASSERT_NE(p, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof buf, p)) > 0)
        r.out.append(buf, n);
    int status = pclose(p);
    EXPECT_EQ(WEXITSTATUS(status), 2) << r.out;
    EXPECT_NE(r.out.find("reason"), std::string::npos);
}

// ------------------------------------------------- whole corpus

TEST(LintCorpus, EveryRuleFiresAcrossTheFixtureTree)
{
    // One scan of the whole corpus: the counts block must name every
    // rule, proving no checker is accidentally scoped out.
    auto r = runLint("--root=" + env("SHRIMP_LINT_FIXTURES")
                     + " --digest-dir=. --state-dir=. .");
    EXPECT_EQ(r.exitCode, 1);
    const minijson::Value *counts = r.json.find("counts");
    ASSERT_NE(counts, nullptr);
    for (const char *rule :
         {"D1", "D2", "D3", "D4", "S1", "S2", "LINT"}) {
        const minijson::Value *c = counts->find(rule);
        ASSERT_NE(c, nullptr) << rule << " never fired";
        EXPECT_GT(int(c->number), 0) << rule;
    }
}

TEST(LintCorpus, RepoTreeIsCleanUnderCommittedBaseline)
{
    // The real gate: the repository itself, with the committed
    // baseline, must be clean (run_checks.sh enforces the same).
    std::string repo = env("SHRIMP_LINT_REPO");
    auto r = runLint("--root=" + repo + " --baseline=" + repo
                     + "/tools/lint_baseline.json");
    EXPECT_EQ(r.exitCode, 0) << r.out;
}

} // namespace
