// shrimp_lint fixture: D4 pointer identity feeding hashing or
// ordering. Never compiled.
#include <cstddef>
#include <cstdint>
#include <functional>

struct Obj;

std::size_t
hashPointer(Obj *p)
{
    return std::hash<Obj *>{}(p); // D4 @ line 12
}

std::uint64_t
pointerAsKey(Obj *p)
{
    return reinterpret_cast<std::uintptr_t>(p); // D4 @ line 18
}

std::size_t
hashValueIsFine(std::uint64_t id)
{
    return std::hash<std::uint64_t>{}(id); // clean: value hash
}
