// shrimp_lint fixture: S2 event-label lifetime. The queue stores the
// label pointer; anything built from a temporary dangles. Never
// compiled.
#include <string>

struct Queue
{
    void schedule(long when, const char *name, int fn);
    void scheduleIn(long delay, const char *name, int fn);
};

void
post(Queue &q, const std::string &base, int node)
{
    q.schedule(1, "ok.literal", 0); // clean: string literal

    q.schedule(1, base.c_str(), 0); // S2 @ line 17

    q.scheduleIn(2, (base + ".suffix").c_str(), 0); // S2 @ line 19

    q.schedule(3, std::string("tmp").c_str(), 0); // S2 @ line 21

    q.schedule(4, ("node" + std::to_string(node)).c_str(), 0); // S2 @ line 23
}

void
staticLabelIsFine(Queue &q)
{
    static const char *kLabel = "ok.static";
    q.schedule(1, kLabel, 0); // clean: static storage duration
}
