// shrimp_lint fixture: D2 unseeded randomness. Never compiled.
#include <cstdlib>
#include <random>

int
libcRand()
{
    return rand(); // D2 @ line 8
}

void
hardwareEntropy()
{
    std::random_device rd; // D2 @ line 14
    (void)rd;
}

void
defaultConstructedEngine()
{
    std::mt19937 gen; // D2 @ line 21
    (void)gen;
}

void
opaqueSeedArgument(unsigned s)
{
    std::mt19937 gen(s); // D2 @ line 28: nothing names a seed
    (void)gen;
}

void
seededEngine(unsigned runSeed)
{
    std::mt19937 gen(runSeed); // clean: argument names the seed
    (void)gen;
}

unsigned
typeMentionOnly(std::mt19937 &gen)
{
    return unsigned(gen()); // clean: engine passed in, not created
}
