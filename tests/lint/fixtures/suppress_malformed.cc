// shrimp_lint fixture: malformed directives are findings themselves
// (rule LINT), so suppressions cannot rot. Never compiled.

void
missingReason()
{
    // shrimp-lint: allow(D1)
    int x = 0; // LINT @ line 7: allow() without a reason
    (void)x;
}

void
unknownRule()
{
    // shrimp-lint: allow(D9) there is no rule D9
    int x = 0; // LINT @ line 15
    (void)x;
}
