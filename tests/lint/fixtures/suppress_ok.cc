// shrimp_lint fixture: a correct inline suppression silences exactly
// its finding. Never compiled.
#include <chrono>

void
justified()
{
    // shrimp-lint: allow(D1) fixture: wall time for a report, never sim state
    auto t = std::chrono::steady_clock::now();
    (void)t;
}
