// shrimp_lint fixture: S1 mutable static/global state. Only checked
// when this file is treated as shard-core code (--state-dir=.).
// Never compiled.

int gCounter = 0; // S1 @ line 5

static bool gFlag = false; // S1 @ line 7

const int kLimit = 16; // clean: immutable

static const char *kName = "fixture"; // clean: immutable by contract

// shrimp-lint: shard-safe(fixture: every accessor takes the registry mutex)
int gAnnotated = 0; // clean: annotated

struct Holder
{
    static int shared_; // S1 @ line 18

    int instance_ = 0; // clean: per-object state

    static int
    accessor()
    {
        return 0; // clean: static member function, not state
    }
};

int
counterWithStaticLocal()
{
    static int calls = 0; // S1 @ line 32
    return ++calls;
}

int
annotatedStaticLocal()
{
    // shrimp-lint: shard-safe(fixture: monotonic counter, atomic in real code)
    static int calls = 0;
    return ++calls;
}
