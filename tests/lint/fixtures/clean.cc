// shrimp_lint fixture: deterministic, shard-safe code — zero
// findings under every rule. Never compiled.
#include <cstdint>
#include <map>
#include <vector>

struct SplitMix64Like
{
    std::uint64_t state = 0x5EED5EEDULL;

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        return z ^ (z >> 31);
    }
};

struct Node
{
    std::map<std::uint64_t, std::uint64_t> ordered;
    std::vector<std::uint64_t> log;

    std::uint64_t
    digest()
    {
        std::uint64_t d = 0xcbf29ce484222325ULL;
        for (const auto &kv : ordered)
            d = (d ^ kv.second) * 0x100000001b3ULL;
        for (std::uint64_t v : log)
            d = (d ^ v) * 0x100000001b3ULL;
        return d;
    }
};
