// shrimp_lint fixture: suppressing the WRONG rule id must not hide
// the real finding. Never compiled.
#include <chrono>

void
mismatched()
{
    // shrimp-lint: allow(D2) fixture: names D2 but the site violates D1
    auto t = std::chrono::steady_clock::now(); // D1 @ line 9 survives
    (void)t;
}
