// shrimp_lint fixture: D3 unordered-container iteration. Only
// checked when this file is treated as digest-affecting
// (--digest-dir=.). Never compiled.
#include <map>
#include <unordered_map>

struct Table
{
    std::unordered_map<int, int> histo_;
    std::map<int, int> ordered_;

    int
    rangeFor()
    {
        int s = 0;
        for (const auto &kv : histo_) // D3 @ line 16
            s += kv.second;
        return s;
    }

    int
    annotatedRangeFor()
    {
        int s = 0;
        // shrimp-lint: order-insensitive(sum is commutative)
        for (const auto &kv : histo_)
            s += kv.second;
        return s;
    }

    int
    iteratorLoop()
    {
        int s = 0;
        for (auto it = histo_.begin(); it != histo_.end(); ++it) // D3 @ line 35
            s += it->second;
        return s;
    }

    int
    orderedIsFine()
    {
        int s = 0;
        for (const auto &kv : ordered_) // clean: std::map iterates sorted
            s += kv.second;
        return s;
    }

    int
    lookupIsFine(int k)
    {
        auto it = histo_.find(k); // clean: keyed lookup, no iteration
        return it == histo_.end() ? 0 : it->second;
    }
};
