// shrimp_lint fixture: D1 wall-clock reads. Never compiled; the
// lint_test harness asserts the exact (rule, line) set found here.
#include <chrono>
#include <ctime>

void
steadyRead()
{
    auto t = std::chrono::steady_clock::now(); // D1 @ line 9
    (void)t;
}

void
systemRead()
{
    auto t = std::chrono::system_clock::now(); // D1 @ line 16
    (void)t;
}

long
cTimeRead()
{
    return time(nullptr); // D1 @ line 23
}

// shrimp-lint: allow(D1) fixture: a justified, annotated wall-clock read
void
annotatedRead()
{
    // The annotation above covers the line after it, not this one:
    // the suppressed site needs its own directive.
}

void
annotatedSite()
{
    // shrimp-lint: allow(D1) fixture: annotated and therefore clean
    auto t = std::chrono::steady_clock::now();
    (void)t;
}
