/**
 * @file
 * A minimal recursive-descent JSON parser for tests and tools — just
 * enough to round-trip what sim::JsonWriter emits (objects with
 * ordered keys, arrays, strings, numbers, booleans, null). Not a
 * general-purpose library: no \u surrogate pairs, numbers parsed with
 * strtod. Header-only so test binaries need no extra sources.
 */

#ifndef SHRIMP_TESTS_SUPPORT_MINI_JSON_HH
#define SHRIMP_TESTS_SUPPORT_MINI_JSON_HH

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace minijson
{

struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<Value> array;
    /** Insertion-ordered, mirroring the writer's emit order. */
    std::vector<std::pair<std::string, Value>> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member lookup (nullptr when absent or not an object). */
    const Value *
    find(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        for (const auto &[k, v] : object) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }

    /**
     * Dotted-path lookup ("counters.i1_invals"). An exact match of
     * the whole remaining path is tried first and every split point
     * is backtracked, so keys that themselves contain dots
     * ("udma0.engine") resolve whichever way they nest.
     */
    const Value *
    path(const std::string &dotted) const
    {
        if (const Value *v = find(dotted))
            return v;
        for (std::size_t pos = dotted.find('.');
             pos != std::string::npos;
             pos = dotted.find('.', pos + 1)) {
            if (const Value *v = find(dotted.substr(0, pos))) {
                if (const Value *r = v->path(dotted.substr(pos + 1)))
                    return r;
            }
        }
        return nullptr;
    }
};

class Parser
{
  public:
    Parser(const std::string &text) : s_(text) {}

    bool
    parse(Value &out, std::string *err)
    {
        bool ok = parseValue(out) && (skipWs(), pos_ == s_.size());
        if (!ok && err)
            *err = error_.empty() ? "trailing garbage at byte " +
                                        std::to_string(pos_)
                                  : error_;
        return ok;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return fail(std::string("expected ") + word);
        pos_ += n;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        switch (s_[pos_]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = Value::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out)
    {
        out.kind = Value::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || s_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            Value v;
            if (!parseValue(v))
                return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated object");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out)
    {
        out.kind = Value::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            Value v;
            if (!parseValue(v))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated array");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_];
            if (c == '\\') {
                if (pos_ + 1 >= s_.size())
                    return fail("bad escape");
                char e = s_[pos_ + 1];
                pos_ += 2;
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > s_.size())
                        return fail("bad \\u escape");
                    unsigned code = unsigned(
                        std::strtoul(s_.substr(pos_, 4).c_str(),
                                     nullptr, 16));
                    pos_ += 4;
                    // Control-character range only (what the writer
                    // emits); everything else is passed through raw.
                    out += char(code & 0x7f);
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
                continue;
            }
            out += c;
            ++pos_;
        }
        if (pos_ >= s_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool
    parseNumber(Value &out)
    {
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected value");
        out.kind = Value::Kind::Number;
        out.number = v;
        pos_ += std::size_t(end - start);
        return true;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    std::string error_;
};

/** Parse @p text into @p out; on failure @p err gets a message. */
inline bool
parse(const std::string &text, Value &out, std::string *err = nullptr)
{
    return Parser(text).parse(out, err);
}

} // namespace minijson

#endif // SHRIMP_TESTS_SUPPORT_MINI_JSON_HH
