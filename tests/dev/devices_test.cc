/**
 * @file
 * Unit tests for the generic UDMA devices: frame buffer, disk,
 * stream sink.
 */

#include <gtest/gtest.h>

#include "dev/disk.hh"
#include "dev/frame_buffer.hh"
#include "dev/stream_sink.hh"
#include "sim/params.hh"

using namespace shrimp;
using namespace shrimp::dev;

// ---------------------------------------------------------- FrameBuffer

TEST(FrameBuffer, GeometryAndExtent)
{
    FrameBuffer fb(320, 240);
    EXPECT_EQ(fb.width(), 320u);
    EXPECT_EQ(fb.height(), 240u);
    EXPECT_EQ(fb.proxyExtentBytes(), 320u * 240 * 4);
}

TEST(FrameBuffer, PushPullRoundTrip)
{
    FrameBuffer fb(16, 16);
    std::vector<std::uint8_t> in(64);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = std::uint8_t(i);
    fb.devicePush(128, in.data(), 64);
    std::vector<std::uint8_t> out(64);
    fb.devicePull(128, out.data(), 64);
    EXPECT_EQ(in, out);
}

TEST(FrameBuffer, PixelAccessor)
{
    FrameBuffer fb(16, 16);
    std::uint32_t px = 0xAABBCCDD;
    fb.devicePush((16 + 2) * 4, reinterpret_cast<std::uint8_t *>(&px),
                  4);
    EXPECT_EQ(fb.pixel(2, 1), 0xAABBCCDDu);
    EXPECT_THROW(fb.pixel(16, 0), PanicError);
}

TEST(FrameBuffer, ValidatesAlignmentAndRange)
{
    FrameBuffer fb(16, 16); // 1024 bytes
    EXPECT_EQ(fb.validateTransfer(true, 0, 1024), 0);
    EXPECT_EQ(fb.validateTransfer(true, 2, 8),
              dma::device_error::alignment);
    EXPECT_EQ(fb.validateTransfer(true, 0, 10),
              dma::device_error::alignment);
    EXPECT_EQ(fb.validateTransfer(true, 1020, 8),
              dma::device_error::range);
}

TEST(FrameBuffer, BoundaryIsWholeVram)
{
    FrameBuffer fb(16, 16);
    EXPECT_EQ(fb.deviceBoundary(0), 1024u);
    EXPECT_EQ(fb.deviceBoundary(1000), 24u);
    EXPECT_EQ(fb.deviceBoundary(2000), 1u) << "past the end: clamp to 1";
}

TEST(FrameBuffer, NeverStalls)
{
    FrameBuffer fb(16, 16);
    EXPECT_EQ(fb.pushCapacity(0, 999), 999u);
    EXPECT_EQ(fb.pullAvailable(0, 999), 999u);
}

// ----------------------------------------------------------------- Disk

TEST(Disk, ImageRoundTripThroughDma)
{
    sim::MachineParams params;
    Disk d(params, 64 << 10);
    std::uint8_t in[16] = {1, 2, 3, 4, 5, 6, 7, 8,
                           9, 10, 11, 12, 13, 14, 15, 16};
    d.devicePush(8192, in, 16);
    std::uint8_t out[16];
    d.devicePull(8192, out, 16);
    EXPECT_EQ(0, memcmp(in, out, 16));
    EXPECT_EQ(d.blockReads(), 1u);
    EXPECT_EQ(d.blockWrites(), 1u);
}

TEST(Disk, HostImageAccess)
{
    sim::MachineParams params;
    Disk d(params, 64 << 10);
    std::uint32_t v = 0x12345678;
    d.writeImage(100, &v, 4);
    std::uint32_t r = 0;
    d.readImage(100, &r, 4);
    EXPECT_EQ(r, v);
}

TEST(Disk, ValidatesRangeAndAlignment)
{
    sim::MachineParams params;
    Disk d(params, 64 << 10);
    EXPECT_EQ(d.validateTransfer(true, 0, 4096), 0);
    EXPECT_EQ(d.validateTransfer(false, 1, 4),
              dma::device_error::alignment);
    EXPECT_EQ(d.validateTransfer(true, (64 << 10) - 4, 8),
              dma::device_error::range);
}

TEST(Disk, BoundaryIsTheBlock)
{
    sim::MachineParams params;
    Disk d(params, 64 << 10, 4096);
    EXPECT_EQ(d.deviceBoundary(0), 4096u);
    EXPECT_EQ(d.deviceBoundary(4000), 96u);
    EXPECT_EQ(d.deviceBoundary(4096), 4096u);
}

TEST(Disk, ChargesSeekLatency)
{
    sim::MachineParams params;
    Disk d(params, 64 << 10);
    EXPECT_EQ(d.startLatency(true, 0), params.diskAccess());
    EXPECT_GT(d.startLatency(false, 0), Tick(1000) * tickUs)
        << "a 1995 disk seek is on the order of milliseconds";
}

TEST(Disk, RejectsUnalignedCapacity)
{
    sim::MachineParams params;
    EXPECT_THROW(Disk(params, 5000, 4096), FatalError);
}

// ----------------------------------------------------------- StreamSink

TEST(StreamSink, CountsAcceptedBytes)
{
    StreamSink s(1 << 20);
    std::uint8_t buf[100] = {};
    s.devicePush(0, buf, 100);
    s.devicePush(0, buf, 50);
    EXPECT_EQ(s.bytesAccepted(), 150u);
}

TEST(StreamSink, SourcesDeterministicPattern)
{
    StreamSink s(1 << 20);
    std::uint8_t a[8], b[8];
    s.devicePull(256, a, 8);
    s.devicePull(256, b, 8);
    EXPECT_EQ(0, memcmp(a, b, 8));
    EXPECT_EQ(a[0], std::uint8_t(256 & 0xff));
    EXPECT_EQ(a[1], std::uint8_t(257 & 0xff));
    EXPECT_EQ(s.bytesSourced(), 16u);
}

TEST(StreamSink, ValidatesExtent)
{
    StreamSink s(4096);
    EXPECT_EQ(s.validateTransfer(true, 0, 4096), 0);
    EXPECT_EQ(s.validateTransfer(true, 4096, 4),
              dma::device_error::range);
    EXPECT_EQ(s.validateTransfer(true, 3, 4),
              dma::device_error::alignment);
}
