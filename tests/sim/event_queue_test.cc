/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace shrimp;
using namespace shrimp::sim;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pendingEvents(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, "c", [&] { order.push_back(3); });
    eq.schedule(10, "a", [&] { order.push_back(1); });
    eq.schedule(20, "b", [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, "late", [&] { order.push_back(2); },
                EventPriority::CpuResume);
    eq.schedule(5, "fifo1", [&] { order.push_back(0); },
                EventPriority::DeviceCompletion);
    eq.schedule(5, "fifo2", [&] { order.push_back(1); },
                EventPriority::DeviceCompletion);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, "outer", [&] {
        eq.scheduleIn(50, "inner", [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue eq;
    bool ran = false;
    auto h = eq.schedule(10, "x", [&] { ran = true; });
    EXPECT_TRUE(eq.deschedule(h));
    EXPECT_FALSE(eq.deschedule(h)); // second cancel is a no-op
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, "a", [&] { ++count; });
    eq.schedule(20, "b", [&] { ++count; });
    eq.schedule(30, "c", [&] { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, "tick", [&] { ++count; });
    eq.runUntil([&] { return count >= 4; });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, "x", [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, "past", [] {}), PanicError);
}

TEST(EventQueue, EventsExecutedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(Tick(i + 1), "e", [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, "a", [&] { ++count; });
    eq.schedule(2, "b", [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleIn(1, "chain", chain);
    };
    eq.schedule(0, "start", chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
}
