/**
 * @file
 * Unit and stress tests for the SPSC ring behind the sharded engine's
 * cross-shard mailboxes. The two-thread stress cases are the ones the
 * TSan suite (tools/run_checks.sh) leans on: they exercise the
 * acquire/release pairing under real concurrency.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/spsc.hh"

using shrimp::sim::SpscRing;

namespace
{

/** Payload whose live instances are observable: holds a shared_ptr
 *  keyed to an external use_count. */
struct Tracked
{
    std::shared_ptr<int> token;
};

} // namespace

TEST(Spsc, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(Spsc, PopOnEmptyFails)
{
    SpscRing<int> ring(4);
    int out = -1;
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.tryPop(out));
    EXPECT_EQ(out, -1);
}

TEST(Spsc, PushOnFullFailsAndDropsNothing)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(int(i)));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_FALSE(ring.tryPush(99));
    int out = -1;
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(ring.tryPop(out));
}

TEST(Spsc, FifoOrderSurvivesWrapAround)
{
    SpscRing<std::uint64_t> ring(8);
    std::uint64_t next_push = 0, next_pop = 0;
    // Interleave pushes and pops so the cursors wrap many times.
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(ring.tryPush(next_push++));
        std::uint64_t out = 0;
        for (int i = 0; i < 5; ++i) {
            ASSERT_TRUE(ring.tryPop(out));
            ASSERT_EQ(out, next_pop++);
        }
    }
    EXPECT_TRUE(ring.empty());
}

TEST(Spsc, MoveOnlyPayload)
{
    SpscRing<std::vector<int>> ring(2);
    ASSERT_TRUE(ring.tryPush(std::vector<int>{1, 2, 3}));
    std::vector<int> out;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Spsc, PopReleasesTheSlotsResources)
{
    // Regression test: tryPop used to move-assign out of the slot but
    // never reset it, so a moved-from payload that still owned
    // resources (e.g. a lambda's captures in the sharded mailboxes)
    // kept them alive inside the ring until the slot was overwritten —
    // or forever, for a ring that drained and then idled.
    SpscRing<Tracked> ring(4);
    auto token = std::make_shared<int>(42);
    ASSERT_TRUE(ring.tryPush(Tracked{token}));
    EXPECT_EQ(token.use_count(), 2); // ours + the slot's

    {
        Tracked out;
        ASSERT_TRUE(ring.tryPop(out));
        ASSERT_TRUE(out.token);
        // The popped value owns one reference; the ring must not.
        EXPECT_EQ(token.use_count(), 2) << "slot kept the payload "
                                           "alive after tryPop";
    }
    EXPECT_EQ(token.use_count(), 1);

    // The same holds across a wrap-around: every drained slot is dead.
    for (int round = 0; round < 10; ++round) {
        ASSERT_TRUE(ring.tryPush(Tracked{token}));
        Tracked out;
        ASSERT_TRUE(ring.tryPop(out));
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(Spsc, TwoThreadStressKeepsOrderAndLosesNothing)
{
    // Small capacity so the ring is constantly full: the stress spends
    // most of its time on the full/empty boundary where the ordering
    // bugs live.
    SpscRing<std::uint64_t> ring(16);
    constexpr std::uint64_t count = 50000;

    // Yield when the ring refuses: on a single-core host the other
    // side cannot progress until this thread gives up the CPU.
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < count;) {
            if (ring.tryPush(std::uint64_t(i)))
                ++i;
            else
                std::this_thread::yield();
        }
    });

    std::uint64_t expect = 0;
    std::uint64_t sum = 0;
    while (expect < count) {
        std::uint64_t out = 0;
        if (!ring.tryPop(out)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(out, expect) << "out-of-order pop";
        sum += out;
        ++expect;
    }
    producer.join();
    EXPECT_EQ(sum, count * (count - 1) / 2);
    EXPECT_TRUE(ring.empty());
}

TEST(Spsc, StressWithHeavyPayload)
{
    // Payload wider than a word: TSan watches the slot copy itself,
    // not just the cursors.
    struct Wide
    {
        std::uint64_t seq = 0;
        std::uint64_t body[6] = {};
    };
    SpscRing<Wide> ring(8);
    constexpr std::uint64_t count = 10000;

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < count;) {
            Wide w;
            w.seq = i;
            for (auto &b : w.body)
                b = i * 3;
            if (ring.tryPush(std::move(w)))
                ++i;
            else
                std::this_thread::yield();
        }
    });

    for (std::uint64_t expect = 0; expect < count;) {
        Wide out;
        if (!ring.tryPop(out)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(out.seq, expect);
        for (auto &b : out.body)
            ASSERT_EQ(b, expect * 3);
        ++expect;
    }
    producer.join();
}
