/**
 * @file
 * Unit tests for the Perfetto trace-event exporter: the document must
 * parse as JSON, every wall-clock B has a matching E on the same
 * track with non-decreasing timestamps, sim-domain events land on
 * their own pids with the right phase markers, and span tracks mirror
 * the registry's retained spans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "../support/mini_json.hh"
#include "sim/span.hh"
#include "sim/trace_sink.hh"

using namespace shrimp;
using namespace shrimp::sim;

namespace
{

/** Parse the sink's output, failing the test on malformed JSON. */
minijson::Value
parseTrace(const TraceSink &sink)
{
    std::ostringstream os;
    sink.write(os);
    minijson::Value doc;
    std::string err;
    EXPECT_TRUE(minijson::parse(os.str(), doc, &err)) << err;
    return doc;
}

const minijson::Value &
events(const minijson::Value &doc)
{
    const minijson::Value *ev = doc.find("traceEvents");
    EXPECT_NE(ev, nullptr);
    EXPECT_TRUE(ev->isArray());
    return *ev;
}

double
num(const minijson::Value &ev, const char *key)
{
    const minijson::Value *v = ev.find(key);
    return (v && v->isNumber()) ? v->number : -1;
}

std::string
str(const minijson::Value &ev, const char *key)
{
    const minijson::Value *v = ev.find(key);
    return (v && v->isString()) ? v->str : std::string();
}

class TraceSinkTest : public ::testing::Test
{
  protected:
    void SetUp() override { span::registry().clear(); }
    void TearDown() override
    {
        span::registry().clear();
        TraceSink::setGlobal(nullptr);
    }
};

} // namespace

TEST_F(TraceSinkTest, WallSlicesBalanceAndStayMonotonic)
{
    TraceSink sink(2);
    sink.workerSlice(0, "execute", 100, 250);
    sink.workerSlice(0, "drain", 250, 300);
    sink.workerSlice(1, "idle", 120, 180);
    EXPECT_EQ(sink.eventCount(), 6u); // three B/E pairs
    EXPECT_EQ(sink.droppedSlices(), 0u);

    minijson::Value doc = parseTrace(sink);
    std::map<std::pair<long, long>, long> depth;
    std::map<std::pair<long, long>, double> last;
    long pairs = 0;
    for (const auto &ev : events(doc).array) {
        std::string ph = str(ev, "ph");
        if (ph != "B" && ph != "E")
            continue;
        auto track = std::make_pair(long(num(ev, "pid")),
                                    long(num(ev, "tid")));
        double ts = num(ev, "ts");
        EXPECT_GE(ts, 0.0);
        auto it = last.find(track);
        if (it != last.end()) {
            EXPECT_GE(ts, it->second) << "ts went backwards";
        }
        last[track] = ts;
        long &d = depth[track];
        if (ph == "B") {
            ++d;
        } else {
            --d;
            EXPECT_GE(d, 0) << "E without B";
            ++pairs;
        }
        EXPECT_EQ(str(ev, "cat"), "worker");
    }
    EXPECT_EQ(pairs, 3);
    for (const auto &[track, d] : depth)
        EXPECT_EQ(d, 0) << "unclosed B on a track";
}

TEST_F(TraceSinkTest, MetadataNamesEveryTrack)
{
    TraceSink sink(2);
    sink.workerSlice(0, "execute", 0, 10);
    sink.simInstant("node0.net", "drop", 1000, "dst", 1, "seq", 7);

    minijson::Value doc = parseTrace(sink);
    std::vector<std::string> processes;
    std::vector<std::string> threads;
    for (const auto &ev : events(doc).array) {
        if (str(ev, "ph") != "M")
            continue;
        const minijson::Value *arg = ev.path("args.name");
        ASSERT_NE(arg, nullptr);
        if (str(ev, "name") == "process_name")
            processes.push_back(arg->str);
        else if (str(ev, "name") == "thread_name")
            threads.push_back(arg->str);
    }
    EXPECT_EQ(processes.size(), 3u); // wall, span, net clock domains
    EXPECT_NE(std::find(threads.begin(), threads.end(), "shard0"),
              threads.end());
    EXPECT_NE(std::find(threads.begin(), threads.end(), "shard1"),
              threads.end());
    EXPECT_NE(std::find(threads.begin(), threads.end(), "node0.net"),
              threads.end());
}

TEST_F(TraceSinkTest, SimDomainsGetTheirOwnPids)
{
    TraceSink sink(1);
    sink.workerSlice(0, "execute", 0, 10);
    sink.simSlice("node0.udma0", "completed", 1000, 5000, "id", 1,
                  "bytes", 4096);
    sink.simInstant("node1.net", "retransmit", 2500, "dst", 0, "seq",
                    3);

    minijson::Value doc = parseTrace(sink);
    std::map<std::string, long> pidOf;
    for (const auto &ev : events(doc).array) {
        std::string ph = str(ev, "ph");
        if (ph == "M")
            continue;
        pidOf[ph] = long(num(ev, "pid"));
        if (ph == "X") {
            EXPECT_GE(num(ev, "dur"), 0.0);
            EXPECT_EQ(str(ev, "cat"), "span");
        }
        if (ph == "i") {
            EXPECT_EQ(str(ev, "s"), "t") << "instant not thread-scoped";
            EXPECT_EQ(str(ev, "cat"), "net");
            const minijson::Value *seq = ev.path("args.seq");
            ASSERT_NE(seq, nullptr);
            EXPECT_EQ(seq->number, 3.0);
        }
    }
    // Three distinct clock domains: wall B/E, span X, net instants.
    ASSERT_EQ(pidOf.count("B"), 1u);
    ASSERT_EQ(pidOf.count("X"), 1u);
    ASSERT_EQ(pidOf.count("i"), 1u);
    EXPECT_NE(pidOf["B"], pidOf["X"]);
    EXPECT_NE(pidOf["X"], pidOf["i"]);
    EXPECT_NE(pidOf["B"], pidOf["i"]);
}

TEST_F(TraceSinkTest, SpanTracksMirrorTheRegistry)
{
    auto id0 = span::registry().open(100, "node0.udma0", 4096);
    span::registry().start(200, id0, true);
    span::registry().close(900, id0, span::Outcome::Completed);
    auto id1 = span::registry().open(150, "node1.udma0", 1024);
    span::registry().close(300, id1, span::Outcome::Inval);

    TraceSink sink(1);
    sink.addSpanTracks();

    minijson::Value doc = parseTrace(sink);
    unsigned slices = 0;
    std::vector<std::string> names;
    for (const auto &ev : events(doc).array) {
        if (str(ev, "ph") != "X")
            continue;
        ++slices;
        names.push_back(str(ev, "name"));
        const minijson::Value *bytes = ev.path("args.bytes");
        ASSERT_NE(bytes, nullptr);
        EXPECT_GT(bytes->number, 0.0);
    }
    EXPECT_EQ(slices, 2u);
    EXPECT_NE(std::find(names.begin(), names.end(),
                        span::outcomeName(span::Outcome::Completed)),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(),
                        span::outcomeName(span::Outcome::Inval)),
              names.end());
}

TEST_F(TraceSinkTest, GlobalHookInstallAndRemove)
{
    EXPECT_EQ(TraceSink::global(), nullptr);
    TraceSink sink(1);
    TraceSink::setGlobal(&sink);
    EXPECT_EQ(TraceSink::global(), &sink);
    TraceSink::setGlobal(nullptr);
    EXPECT_EQ(TraceSink::global(), nullptr);
}

TEST_F(TraceSinkTest, OutOfRangeShardIsIgnored)
{
    TraceSink sink(1);
    sink.workerSlice(5, "execute", 0, 10); // no such track
    EXPECT_EQ(sink.eventCount(), 0u);
    // Still a valid (metadata-only) document.
    parseTrace(sink);
}
