/**
 * @file
 * Unit tests for the coroutine plumbing (ProcTask, Task<T>).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/coro.hh"

using namespace shrimp;
using namespace shrimp::sim;

namespace
{

/** Manual awaitable: records the handle so the test can resume it. */
struct ManualAwait
{
    std::coroutine_handle<> *slot;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { *slot = h; }
    void await_resume() const noexcept {}
};

} // namespace

TEST(ProcTask, StartsSuspendedAndRunsOnResume)
{
    bool ran = false;
    auto make = [&]() -> ProcTask {
        ran = true;
        co_return;
    };
    ProcTask t = make();
    EXPECT_TRUE(t.valid());
    EXPECT_FALSE(ran) << "initial_suspend must be suspend_always";
    t.resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(t.done());
}

TEST(ProcTask, OnDoneFiresAtCompletion)
{
    std::coroutine_handle<> h;
    int done_count = 0;
    auto make = [&]() -> ProcTask {
        co_await ManualAwait{&h};
        co_return;
    };
    ProcTask t = make();
    t.setOnDone([&] { ++done_count; });
    t.resume();
    EXPECT_EQ(done_count, 0);
    EXPECT_FALSE(t.done());
    h.resume();
    EXPECT_EQ(done_count, 1);
    EXPECT_TRUE(t.done());
}

TEST(ProcTask, CapturesAndRethrowsExceptions)
{
    auto make = []() -> ProcTask {
        throw std::runtime_error("boom");
        co_return;
    };
    ProcTask t = make();
    t.resume();
    EXPECT_TRUE(t.done());
    EXPECT_THROW(t.rethrowIfFailed(), std::runtime_error);
}

TEST(ProcTask, DestroyingSuspendedTaskIsSafe)
{
    std::coroutine_handle<> h;
    bool finished = false;
    {
        auto make = [&]() -> ProcTask {
            co_await ManualAwait{&h};
            finished = true;
        };
        ProcTask t = make();
        t.resume();
        // t destroyed while suspended: the frame must be freed.
    }
    EXPECT_FALSE(finished);
}

TEST(ProcTask, MoveTransfersOwnership)
{
    auto make = []() -> ProcTask { co_return; };
    ProcTask a = make();
    ProcTask b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    b.resume();
    EXPECT_TRUE(b.done());
}

TEST(TaskT, ReturnsValueThroughAwait)
{
    auto inner = []() -> Task<int> { co_return 42; };
    int got = 0;
    auto outer = [&]() -> ProcTask { got = co_await inner(); };
    ProcTask t = outer();
    t.resume();
    EXPECT_EQ(got, 42);
    EXPECT_TRUE(t.done());
}

TEST(TaskT, ChainsThroughNestedTasks)
{
    auto leaf = [](int x) -> Task<int> { co_return x * 2; };
    auto mid = [&](int x) -> Task<int> {
        int a = co_await leaf(x);
        int b = co_await leaf(a);
        co_return a + b;
    };
    int got = 0;
    auto outer = [&]() -> ProcTask { got = co_await mid(3); };
    ProcTask t = outer();
    t.resume();
    EXPECT_EQ(got, 6 + 12);
}

TEST(TaskT, SuspensionInsideNestedTaskResumesWholeChain)
{
    std::coroutine_handle<> h;
    auto leaf = [&]() -> Task<int> {
        co_await ManualAwait{&h};
        co_return 7;
    };
    int got = 0;
    auto outer = [&]() -> ProcTask { got = co_await leaf(); };
    ProcTask t = outer();
    t.resume();
    EXPECT_EQ(got, 0) << "chain should be suspended";
    h.resume(); // resumes the leaf; symmetric transfer resumes outer
    EXPECT_EQ(got, 7);
    EXPECT_TRUE(t.done());
}

TEST(TaskT, PropagatesExceptionsToAwaiter)
{
    auto leaf = []() -> Task<int> {
        throw std::logic_error("inner");
        co_return 0;
    };
    bool caught = false;
    auto outer = [&]() -> ProcTask {
        try {
            (void)co_await leaf();
        } catch (const std::logic_error &) {
            caught = true;
        }
    };
    ProcTask t = outer();
    t.resume();
    EXPECT_TRUE(caught);
}

TEST(TaskVoid, RunsAndResumesAwaiter)
{
    bool inner_ran = false;
    auto leaf = [&]() -> Task<void> {
        inner_ran = true;
        co_return;
    };
    bool after = false;
    auto outer = [&]() -> ProcTask {
        co_await leaf();
        after = true;
    };
    ProcTask t = outer();
    t.resume();
    EXPECT_TRUE(inner_ran);
    EXPECT_TRUE(after);
}

TEST(TaskT, MovableValueTypes)
{
    auto leaf = []() -> Task<std::vector<int>> {
        co_return std::vector<int>{1, 2, 3};
    };
    std::vector<int> got;
    auto outer = [&]() -> ProcTask { got = co_await leaf(); };
    ProcTask t = outer();
    t.resume();
    EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}
