/**
 * @file
 * Fuzz/soak tests for the event queue's slab allocator and
 * generation-tagged handles: a handle to a fired, cancelled, or
 * recycled slot must make deschedule() a detected no-op — never a
 * use-after-free (this suite carries the `sanitize` ctest label in
 * SHRIMP_SANITIZE builds) — and cancel-heavy load must trigger heap
 * compaction without losing live events.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace shrimp;
using namespace shrimp::sim;

TEST(EventSlabFuzz, RecycledSlotHandleIsStale)
{
    EventQueue eq;
    bool a_ran = false, b_ran = false;
    EventHandle ha = eq.schedule(1, "a", [&] { a_ran = true; });
    ASSERT_TRUE(eq.step());
    EXPECT_TRUE(a_ran);

    // The next schedule recycles a's slab slot; a's stale handle must
    // not be able to cancel (or corrupt) the new occupant.
    EventHandle hb = eq.schedule(2, "b", [&] { b_ran = true; });
    EXPECT_FALSE(eq.deschedule(ha));
    eq.run();
    EXPECT_TRUE(b_ran);
    EXPECT_FALSE(eq.deschedule(hb)); // already fired
}

TEST(EventSlabFuzz, DoubleDescheduleIsNoOp)
{
    EventQueue eq;
    bool ran = false;
    EventHandle h = eq.schedule(10, "x", [&] { ran = true; });
    EXPECT_TRUE(eq.deschedule(h));
    EXPECT_FALSE(eq.deschedule(h));
    // The freed slot gets recycled; the old handle must still miss.
    eq.schedule(20, "y", [] {});
    EXPECT_FALSE(eq.deschedule(h));
    eq.run();
    EXPECT_FALSE(ran);
}

/**
 * Soak: a random mix of schedule / fire / deschedule where deschedule
 * deliberately targets handles of *any* age, including long-fired and
 * long-recycled ones. A shadow model predicts the exact result:
 * deschedule succeeds iff the event has neither fired nor been
 * cancelled. At the end every event fired XOR was cancelled.
 */
TEST(EventSlabFuzz, HandleSoakMatchesShadowModel)
{
    EventQueue eq;
    Random rng(0xF1DD1E);

    // Fired flags live in a deque so references stay stable as the
    // population grows (callbacks capture a pointer to their flag).
    std::deque<char> fired;
    struct Tracked
    {
        EventHandle h;
        std::size_t idx;
        bool cancelled = false;
    };
    std::vector<Tracked> evs;

    for (int iter = 0; iter < 200000; ++iter) {
        unsigned roll = rng.below(100);
        if (roll < 50 || evs.empty()) {
            fired.push_back(0);
            char *flag = &fired.back();
            EventHandle h =
                eq.scheduleIn(1 + rng.below(700), "fuzz",
                              [flag] { *flag = 1; });
            evs.push_back(Tracked{h, fired.size() - 1});
        } else if (roll < 80) {
            eq.step();
        } else {
            Tracked &t = evs[rng.below(std::uint64_t(evs.size()))];
            bool expect = !fired[t.idx] && !t.cancelled;
            bool got = eq.deschedule(t.h);
            ASSERT_EQ(got, expect)
                << "deschedule disagreed with the shadow model at "
                << "iteration " << iter;
            if (got)
                t.cancelled = true;
        }
    }
    eq.run();

    for (const Tracked &t : evs) {
        EXPECT_NE(bool(fired[t.idx]), t.cancelled)
            << "event must fire exactly when it was not cancelled";
    }
}

/**
 * Satellite: cancelled entries may not accumulate in the heap
 * forever. A cancel-heavy phase must trigger compaction, and the
 * surviving events must all still fire.
 */
TEST(EventSlabFuzz, CancelHeavyLoadCompactsHeap)
{
    EventQueue eq;
    Random rng(0xC0FFEE);

    constexpr unsigned total = 20000;
    std::vector<EventHandle> handles;
    unsigned fired = 0;
    for (unsigned i = 0; i < total; ++i) {
        handles.push_back(eq.schedule(
            1 + rng.below(1000000), "bulk", [&fired] { ++fired; }));
    }

    // Cancel ~95% without advancing time at all: lazy deletion alone
    // would leave every entry sitting in the heap.
    unsigned cancelled = 0;
    for (unsigned i = 0; i < total; ++i) {
        if (rng.below(100) < 95 && eq.deschedule(handles[i]))
            ++cancelled;
    }
    EXPECT_GE(eq.compactions(), 1u)
        << "cancel-heavy load must compact the heap";
    EXPECT_LE(eq.heapEntries(), std::size_t(2 * (total - cancelled)))
        << "stale entries must not dominate the heap after cancels";

    eq.run();
    EXPECT_EQ(fired, total - cancelled);
    EXPECT_EQ(eq.eventsCancelled(), cancelled);
}

/**
 * Steady-state scheduling allocates nothing: once the slab and heap
 * reach the workload's high-water mark, a sustained
 * schedule/fire/cancel mix must not grow any container, and small
 * callbacks must never hit the EventCallback heap fallback.
 */
TEST(EventSlabFuzz, SteadyStateIsAllocationFree)
{
    EventQueue eq;
    Random rng(0x5EED);

    std::vector<EventHandle> spec(64);
    std::uint64_t fired = 0;
    // Self-rescheduling workload, warmed up past the high-water mark.
    struct Pump
    {
        EventQueue *eq;
        Random *rng;
        std::vector<EventHandle> *spec;
        std::uint64_t *fired;
        unsigned idx;

        void
        operator()()
        {
            ++*fired;
            auto self = *this;
            eq->scheduleIn(1 + rng->below(100), "pump", self);
            if ((*spec)[idx].valid())
                eq->deschedule((*spec)[idx]);
            (*spec)[idx] =
                eq->scheduleIn(100000, "spec", [] {});
        }
    };
    for (unsigned i = 0; i < 64; ++i)
        eq.scheduleIn(1 + i, "seed", Pump{&eq, &rng, &spec, &fired, i});

    while (fired < 50000 && eq.step()) {
    }
    std::uint64_t growths0 = eq.containerGrowths();
    std::uint64_t fallbacks0 = EventCallback::heapFallbacks();
    while (fired < 150000 && eq.step()) {
    }
    EXPECT_EQ(eq.containerGrowths(), growths0)
        << "steady-state scheduling must not grow slab/heap storage";
    EXPECT_EQ(EventCallback::heapFallbacks(), fallbacks0)
        << "small callbacks must stay in inline storage";
}

/** Captures larger than the inline buffer take the counted heap
 *  fallback and still run correctly. */
TEST(EventSlabFuzz, OversizeCaptureUsesHeapFallbackAndRuns)
{
    EventQueue eq;
    struct Big
    {
        char payload[128];
    };
    Big big{};
    big.payload[0] = 42;
    big.payload[127] = 7;

    std::uint64_t before = EventCallback::heapFallbacks();
    int seen = 0;
    eq.schedule(1, "big", [big, &seen] {
        seen = big.payload[0] + big.payload[127];
    });
    EXPECT_EQ(EventCallback::heapFallbacks(), before + 1);
    eq.run();
    EXPECT_EQ(seen, 49);
}
