/**
 * @file
 * Unit tests for the shard time-budget profiler: bucket accumulation,
 * idle-window classification, skip counting, the JSON block, and the
 * TraceSink mirroring of noted phases.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "../support/mini_json.hh"
#include "sim/json.hh"
#include "sim/profiler.hh"
#include "sim/trace_sink.hh"

using namespace shrimp::sim;

TEST(ShardProfilerTest, BucketsAccumulatePerWorker)
{
    ShardProfiler prof(2);
    prof.beginRun();
    prof.notePlan(0, 0, 10);
    prof.noteExecute(0, 10, 40, /*events_fired=*/5);
    prof.noteSync(0, 40, 55);
    prof.noteDrain(0, 55, 70, /*drained=*/3);
    prof.noteExecute(0, 70, 90, /*events_fired=*/0); // idle window
    prof.notePlan(1, 0, 25);
    prof.noteDrain(1, 25, 30, 9);
    prof.endRun();

    const ShardProfiler::Slot &s0 = prof.slot(0);
    EXPECT_EQ(s0.planNs, 10u);
    EXPECT_EQ(s0.executeNs, 30u);
    EXPECT_EQ(s0.syncNs, 15u);
    EXPECT_EQ(s0.drainNs, 15u);
    EXPECT_EQ(s0.idleNs, 20u);
    EXPECT_EQ(s0.windows, 2u);
    EXPECT_EQ(s0.idleWindows, 1u);
    EXPECT_EQ(s0.events, 5u);
    EXPECT_EQ(s0.drained, 3u);
    EXPECT_EQ(s0.maxDrainBatch, 3u);
    EXPECT_EQ(s0.accountedNs(), 90u);

    ShardProfiler::Slot tot = prof.totals();
    EXPECT_EQ(tot.planNs, 35u);
    EXPECT_EQ(tot.drained, 12u);
    EXPECT_EQ(tot.maxDrainBatch, 9u);
    EXPECT_EQ(tot.windows, 2u);
    EXPECT_GT(prof.wallNs(), 0u);
}

TEST(ShardProfilerTest, BeginRunResetsState)
{
    ShardProfiler prof(1);
    prof.beginRun();
    prof.noteExecute(0, 0, 100, 1);
    prof.noteWindowSkip();
    prof.endRun();
    EXPECT_EQ(prof.slot(0).executeNs, 100u);
    EXPECT_EQ(prof.skippedWindowRuns(), 1u);

    prof.beginRun();
    EXPECT_TRUE(prof.running());
    EXPECT_EQ(prof.slot(0).executeNs, 0u);
    EXPECT_EQ(prof.skippedWindowRuns(), 0u);
    prof.endRun();
    EXPECT_FALSE(prof.running());
}

TEST(ShardProfilerTest, JsonBlockCarriesTheFullBudget)
{
    ShardProfiler prof(2);
    prof.beginRun();
    prof.noteExecute(0, 0, 40, 7);
    prof.noteDrain(1, 0, 10, 2);
    prof.noteWindowSkip();
    prof.endRun();

    std::ostringstream os;
    JsonWriter w(os);
    prof.dumpJson(w);
    w.finish();

    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(os.str(), doc, &err)) << err;

    const minijson::Value *shards = doc.find("shards");
    ASSERT_NE(shards, nullptr);
    EXPECT_EQ(shards->number, 2.0);
    ASSERT_NE(doc.find("wall_ns"), nullptr);
    ASSERT_NE(doc.find("accounted_frac"), nullptr);
    const minijson::Value *skips = doc.find("skipped_window_runs");
    ASSERT_NE(skips, nullptr);
    EXPECT_EQ(skips->number, 1.0);
    const minijson::Value *exec = doc.path("totals_ns.execute");
    ASSERT_NE(exec, nullptr);
    EXPECT_EQ(exec->number, 40.0);
    const minijson::Value *per = doc.find("per_shard");
    ASSERT_NE(per, nullptr);
    ASSERT_TRUE(per->isArray());
    ASSERT_EQ(per->array.size(), 2u);
    const minijson::Value *ev = per->array[0].find("events");
    ASSERT_NE(ev, nullptr);
    EXPECT_EQ(ev->number, 7.0);
}

TEST(ShardProfilerTest, TableListsEveryShardAndTheTotals)
{
    ShardProfiler prof(2);
    prof.beginRun();
    prof.noteExecute(0, 0, 50, 3);
    prof.noteExecute(1, 0, 20, 0);
    prof.endRun();

    std::ostringstream os;
    prof.writeTable(os);
    const std::string table = os.str();
    EXPECT_NE(table.find("shard time budget"), std::string::npos);
    EXPECT_NE(table.find("execute"), std::string::npos);
    EXPECT_NE(table.find("all"), std::string::npos);
    EXPECT_NE(table.find("idle windows: 1 of 2"), std::string::npos);
}

TEST(ShardProfilerTest, NotesAreDroppedWhenNotRunning)
{
    ShardProfiler prof(1);
    prof.noteExecute(0, 0, 100, 1); // before beginRun: recorded into
                                    // the slot but wiped by beginRun
    prof.beginRun();
    prof.endRun();
    EXPECT_EQ(prof.slot(0).executeNs, 0u);
    EXPECT_EQ(prof.totals().accountedNs(), 0u);
    EXPECT_EQ(prof.accountedFraction(), 0.0);
}

TEST(ShardProfilerTest, PhasesMirrorIntoTheTraceSink)
{
    TraceSink sink(2);
    ShardProfiler prof(2);
    prof.setTraceSink(&sink);
    prof.beginRun();
    prof.notePlan(0, 0, 10);
    prof.noteExecute(0, 10, 30, 4);
    prof.noteSync(0, 30, 35);
    prof.noteDrain(0, 35, 45, 1);
    prof.noteExecute(1, 0, 15, 0); // "idle" slice
    prof.endRun();

    // Five noted phases -> five wall slices -> ten B/E events.
    EXPECT_EQ(sink.eventCount(), 10u);

    std::ostringstream os;
    sink.write(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"execute\""), std::string::npos);
    EXPECT_NE(text.find("\"idle\""), std::string::npos);
    EXPECT_NE(text.find("\"barrier.plan\""), std::string::npos);
    EXPECT_NE(text.find("\"barrier.sync\""), std::string::npos);
    EXPECT_NE(text.find("\"drain\""), std::string::npos);
}
