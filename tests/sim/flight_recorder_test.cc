/**
 * @file
 * Unit tests for the sim-event flight recorder: ring bounding, the
 * destroyed-recorder graveyard, the global enable switch, and the
 * dump format the failure paths grep for.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/flight_recorder.hh"

using namespace shrimp;
using namespace shrimp::sim;

namespace
{

/** Every test starts from an empty registry and restores defaults
 *  (other suites in this binary create EventQueues whose recorders
 *  feed the same process-global graveyard). */
class FlightRecorderTest : public ::testing::Test
{
  protected:
    void SetUp() override { FlightRecorder::clearAll(); }
    void TearDown() override
    {
        FlightRecorder::setEnabled(true);
        FlightRecorder::setDumpOnPanic(false);
        FlightRecorder::clearAll();
    }

    static std::string
    dump()
    {
        std::ostringstream os;
        FlightRecorder::dumpAll(os);
        return os.str();
    }
};

} // namespace

TEST_F(FlightRecorderTest, RecordsAndDumpsLiveRings)
{
    FlightRecorder fr;
    fr.setLabel("node7");
    fr.record(100, "deliver", 2);
    fr.record(250, "credit", -1);
    EXPECT_EQ(fr.recorded(), 2u);

    const std::string text = dump();
    EXPECT_NE(text.find("flight recorder"), std::string::npos);
    EXPECT_NE(text.find("node7: 2 events recorded"), std::string::npos);
    EXPECT_NE(text.find("t=100 prio=2 deliver"), std::string::npos);
    EXPECT_NE(text.find("t=250 prio=-1 credit"), std::string::npos);
}

TEST_F(FlightRecorderTest, RingKeepsOnlyTheTail)
{
    FlightRecorder fr;
    fr.setLabel("busy");
    for (std::uint64_t i = 0; i < FlightRecorder::capacity; ++i)
        fr.record(Tick(i), "early", 0);
    fr.record(999, "late", 0);
    EXPECT_EQ(fr.recorded(), FlightRecorder::capacity + 1);

    const std::string text = dump();
    // The first recorded event (t=0) was overwritten; the newest
    // survives, and the dump says how many it kept.
    EXPECT_NE(text.find("t=999"), std::string::npos);
    EXPECT_NE(text.find("last 128:"), std::string::npos);
    EXPECT_EQ(text.find("[0] t=0 "), std::string::npos);
}

TEST_F(FlightRecorderTest, GraveyardSurvivesDestruction)
{
    {
        FlightRecorder fr;
        fr.setLabel("ghost");
        fr.record(42, "lastwords", 1);
    }
    const std::string text = dump();
    EXPECT_NE(text.find("ghost (destroyed): 1 events recorded"),
              std::string::npos);
    EXPECT_NE(text.find("lastwords prio=1"), std::string::npos);

    FlightRecorder::clearAll();
    EXPECT_NE(dump().find("(no recorded events)"), std::string::npos);
}

TEST_F(FlightRecorderTest, SilentRecordersLeaveNoTrace)
{
    FlightRecorder fr;        // never records
    { FlightRecorder dead; }  // destroyed empty: no graveyard entry
    EXPECT_NE(dump().find("(no recorded events)"), std::string::npos);
}

TEST_F(FlightRecorderTest, DisableStopsRecording)
{
    FlightRecorder fr;
    FlightRecorder::setEnabled(false);
    fr.record(1, "dropped", 0);
    EXPECT_EQ(fr.recorded(), 0u);
    FlightRecorder::setEnabled(true);
    fr.record(2, "kept", 0);
    EXPECT_EQ(fr.recorded(), 1u);
}

TEST_F(FlightRecorderTest, DumpOnPanicDefaultsOff)
{
    EXPECT_FALSE(FlightRecorder::dumpOnPanic());
    FlightRecorder::setDumpOnPanic(true);
    EXPECT_TRUE(FlightRecorder::dumpOnPanic());
}
