/**
 * @file
 * Stress/property tests for the event queue: heavy random scheduling
 * with cancellation, ordering invariants, and timing monotonicity.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace shrimp;
using namespace shrimp::sim;

TEST(EventStress, RandomScheduleExecutesInNondecreasingTimeOrder)
{
    EventQueue eq;
    Random rng(1234);
    Tick last = 0;
    bool monotone = true;
    std::uint64_t executed = 0;
    for (int i = 0; i < 5000; ++i) {
        Tick when = rng.below(1000000);
        eq.schedule(when, "e", [&, when] {
            monotone = monotone && eq.now() >= last
                       && eq.now() == when;
            last = eq.now();
            ++executed;
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(executed, 5000u);
}

TEST(EventStress, RandomCancellationNeverFiresCancelled)
{
    EventQueue eq;
    Random rng(99);
    std::vector<EventHandle> handles;
    std::vector<bool> cancelled(3000, false);
    std::vector<bool> fired(3000, false);
    for (int i = 0; i < 3000; ++i) {
        handles.push_back(eq.schedule(
            rng.between(1, 100000), "e", [&fired, i] {
                fired[i] = true;
            }));
    }
    for (int i = 0; i < 3000; ++i) {
        if (rng.chance(0.4)) {
            cancelled[i] = eq.deschedule(handles[i]);
            EXPECT_TRUE(cancelled[i]);
        }
    }
    eq.run();
    for (int i = 0; i < 3000; ++i)
        EXPECT_NE(fired[i], cancelled[i]) << "event " << i;
}

TEST(EventStress, CascadingSchedulesFromCallbacks)
{
    EventQueue eq;
    Random rng(5);
    std::uint64_t executed = 0;
    std::function<void(int)> spawn = [&](int depth) {
        ++executed;
        if (depth <= 0)
            return;
        int fanout = int(rng.between(0, 2));
        for (int i = 0; i < fanout; ++i) {
            eq.scheduleIn(rng.between(1, 100), "cascade",
                          [&spawn, depth] { spawn(depth - 1); });
        }
    };
    eq.schedule(0, "root", [&] { spawn(14); });
    eq.run();
    EXPECT_GT(executed, 1u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventStress, PendingCountStaysConsistent)
{
    EventQueue eq;
    Random rng(31);
    std::size_t live = 0;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 1000; ++i) {
        handles.push_back(eq.schedule(rng.between(1, 5000), "e", [] {}));
        ++live;
    }
    for (int i = 0; i < 1000; i += 3) {
        if (eq.deschedule(handles[i]))
            --live;
    }
    EXPECT_EQ(eq.pendingEvents(), live);
    while (eq.step())
        --live;
    EXPECT_EQ(live, 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventStress, LimitBoundaryIsExact)
{
    EventQueue eq;
    int at_100 = 0, at_101 = 0;
    eq.schedule(100, "a", [&] { ++at_100; });
    eq.schedule(101, "b", [&] { ++at_101; });
    eq.run(100);
    EXPECT_EQ(at_100, 1) << "events at exactly the limit execute";
    EXPECT_EQ(at_101, 0);
    EXPECT_EQ(eq.pendingEvents(), 1u);
    eq.run();
    EXPECT_EQ(at_101, 1);
}
