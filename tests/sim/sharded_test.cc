/**
 * @file
 * Unit tests for the sharded simulation engine: shard/lookahead
 * clamping, windowed execution, the canonical cross-shard drain order,
 * and the sequential runSetup interleave. These run the real worker
 * threads, so they double as TSan coverage for the barrier and
 * mailbox paths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/sharded.hh"

using namespace shrimp;
using namespace shrimp::sim;

TEST(Sharded, ClampsShardsAndLookahead)
{
    ShardedEngine eng(4, 8, 0);
    EXPECT_EQ(eng.nodeCount(), 4u);
    EXPECT_EQ(eng.shardCount(), 4u) << "no more shards than nodes";
    EXPECT_EQ(eng.lookahead(), 1u) << "lookahead floor is one tick";
}

TEST(Sharded, RoundRobinShardAssignment)
{
    ShardedEngine eng(5, 2, 10);
    EXPECT_EQ(eng.shardOf(0), 0u);
    EXPECT_EQ(eng.shardOf(1), 1u);
    EXPECT_EQ(eng.shardOf(2), 0u);
    EXPECT_EQ(eng.shardOf(4), 0u);
}

TEST(Sharded, RunsNodeLocalEventsToCompletion)
{
    ShardedEngine eng(3, 3, 100);
    std::vector<std::uint64_t> fired(3, 0);
    for (NodeId n = 0; n < 3; ++n) {
        std::uint64_t *slot = &fired[n];
        for (Tick t = 1; t <= 5; ++t)
            eng.queue(n).schedule(t * 250, "test.local",
                                  [slot] { ++*slot; });
    }
    eng.run();
    for (NodeId n = 0; n < 3; ++n)
        EXPECT_EQ(fired[n], 5u) << "node " << n;
    EXPECT_EQ(eng.eventsExecuted(), 15u);
    EXPECT_EQ(eng.pendingEvents(), 0u);
    EXPECT_EQ(eng.crossPosts(), 0u);
}

TEST(Sharded, CrossPostsDeliverAtTheRequestedTick)
{
    ShardedEngine eng(2, 2, 50);
    std::vector<Tick> seen;
    eng.queue(0).schedule(10, "test.src", [&eng] {
        // From node 0's shard, one hop in the future.
        eng.post(0, 1, 60, "test.x", [] {},
                 EventPriority::Default);
    });
    eng.queue(1).schedule(60, "test.probe", [&eng, &seen] {
        seen.push_back(eng.queue(1).now());
    });
    eng.run();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 60u);
    EXPECT_EQ(eng.crossPosts(), 1u);
    EXPECT_GE(eng.windows(), 1u);
}

TEST(Sharded, DrainOrderIsTickPriorityThenSourceNode)
{
    // Three sources converge on node 3 at the same tick; however the
    // shards interleave, execution order on node 3 must be the
    // canonical (tick, priority, source) order.
    ShardedEngine eng(4, 4, 10);
    std::vector<int> order;
    for (NodeId src = 0; src < 3; ++src) {
        eng.queue(src).schedule(
            5, "test.src", [&eng, &order, src] {
                // Reversed priorities across sources so source order
                // alone would be wrong: node 2 posts the
                // highest-priority event.
                auto prio = src == 2 ? EventPriority::DeviceCompletion
                                     : EventPriority::Default;
                eng.post(src, 3, 20, "test.x",
                         [&order, src] { order.push_back(int(src)); },
                         prio);
            });
    }
    eng.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 2) << "DeviceCompletion runs first";
    EXPECT_EQ(order[1], 0) << "then ascending source node";
    EXPECT_EQ(order[2], 1);
}

TEST(Sharded, SelfPostSchedulesDirectly)
{
    ShardedEngine eng(2, 2, 100);
    bool fired = false;
    eng.queue(0).schedule(1, "test.src", [&eng, &fired] {
        // src == dst is exempt from the lookahead rule.
        eng.post(0, 0, 2, "test.self", [&fired] { fired = true; },
                 EventPriority::Default);
    });
    eng.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(eng.crossPosts(), 0u) << "self-sends skip the mailbox";
}

TEST(Sharded, CrossPostInsideTheWindowPanics)
{
    ShardedEngine eng(2, 2, 100);
    eng.queue(0).schedule(50, "test.src", [&eng] {
        // 100 < 50 + lookahead: would land inside the current window.
        eng.post(0, 1, 100, "test.bad", [] {},
                 EventPriority::Default);
    });
    EXPECT_THROW(eng.run(), PanicError);
}

TEST(Sharded, RunStopsAtTheLimit)
{
    ShardedEngine eng(2, 2, 10);
    int fired = 0;
    eng.queue(0).schedule(5, "test.a", [&fired] { ++fired; });
    eng.queue(0).schedule(500, "test.b", [&fired] { ++fired; });
    Tick t = eng.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_LE(t, 100u);
    EXPECT_EQ(eng.pendingEvents(), 1u);
    eng.run();
    EXPECT_EQ(fired, 2);
}

TEST(Sharded, RunUntilStopsAtABarrierOncePredHolds)
{
    // Both shards hold pending events, so each one's promise bounds
    // the other's horizon to ~one lookahead and the predicate gets a
    // barrier to stop at long before the queues drain. (A shard with
    // no incoming traffic would instead run to the limit in one
    // window — see WindowsWidenForDecoupledShards.)
    ShardedEngine eng(2, 2, 10);
    std::atomic<int> fired{0};
    for (Tick t = 1; t <= 20; ++t) {
        eng.queue(0).schedule(t * 7, "test.tick",
                              [&fired] { ++fired; });
        eng.queue(1).schedule(t * 7, "test.tock",
                              [&fired] { ++fired; });
    }
    eng.runUntil([&fired] { return fired >= 3; });
    EXPECT_GE(fired, 3);
    EXPECT_LT(fired, 40) << "stopped well before the queues drained";
}

TEST(Sharded, WindowsWidenForDecoupledShards)
{
    // Promise-based horizons: shard 1 has nothing pending, so the
    // earliest thing it could ever send shard 0 is a reflection of
    // shard 0's own traffic — a full round trip away. Shard 0's
    // window therefore spans two lookaheads (200000 ticks), and the
    // whole 50000-tick run completes in one planned window instead of
    // one per event gap.
    ShardedEngine eng(2, 2, 100000);
    int fired = 0;
    for (Tick t = 1; t <= 50; ++t)
        eng.queue(0).schedule(t * 1000, "test.tick",
                              [&fired] { ++fired; });
    eng.run();
    EXPECT_EQ(fired, 50);
    EXPECT_LE(eng.windows(), 2u)
        << "the run should fit in one round-trip-wide window";
}

TEST(Sharded, PairLookaheadFoldsNodePairMinima)
{
    // Distance-aware construction: the engine keeps a per-(src shard,
    // dst shard) matrix holding the minimum over the node pairs that
    // map onto each cell.
    ShardedEngine eng(4, 2, ShardedEngine::PairLookahead(
                                [](NodeId src, NodeId) -> Tick {
                                    return src == 0 ? 20 : 80;
                                }));
    // Shard 0 = {0, 2}, shard 1 = {1, 3}. Cell (0, 1) sees src 0
    // (floor 20) and src 2 (floor 80): the min wins.
    EXPECT_EQ(eng.pairLookahead(0, 1), 20u);
    EXPECT_EQ(eng.pairLookahead(1, 0), 80u) << "srcs 1 and 3 only";
    EXPECT_EQ(eng.lookahead(), 20u) << "min over the whole matrix";
}

TEST(Sharded, CrossPostInsideThePairWindowPanics)
{
    // The posting rule is per shard pair: a post that satisfies the
    // matrix minimum is fine, one inside its own pair's floor panics
    // even though other pairs have smaller floors.
    ShardedEngine eng(4, 2, ShardedEngine::PairLookahead(
                                [](NodeId src, NodeId) -> Tick {
                                    return src == 0 ? 20 : 80;
                                }));
    bool delivered = false;
    eng.queue(0).schedule(10, "test.ok", [&eng, &delivered] {
        // 10 + 20 = 30: exactly at shard pair (0, 1)'s floor.
        eng.post(0, 1, 30, "test.x", [&delivered] { delivered = true; },
                 EventPriority::Default);
    });
    eng.run();
    EXPECT_TRUE(delivered);

    ShardedEngine bad(4, 2, ShardedEngine::PairLookahead(
                                [](NodeId src, NodeId) -> Tick {
                                    return src == 0 ? 20 : 80;
                                }));
    bad.queue(1).schedule(10, "test.src", [&bad] {
        // Shard pair (1, 0) floor is 80; 10 + 50 lands inside it.
        bad.post(1, 0, 60, "test.bad", [] {},
                 EventPriority::Default);
    });
    EXPECT_THROW(bad.run(), PanicError);
}

TEST(Sharded, SameShardCrossPostsDeliverDirectly)
{
    // Nodes 0 and 2 share shard 0: the post skips the mailbox, is
    // executed by the merged in-shard loop at its exact tick, and
    // still counts as cross-node traffic.
    ShardedEngine eng(4, 2, 10);
    std::vector<Tick> seen;
    eng.queue(0).schedule(10, "test.src", [&eng, &seen] {
        eng.post(0, 2, 25, "test.x", [&eng, &seen] {
            seen.push_back(eng.queue(2).now());
        }, EventPriority::Default);
    });
    eng.run();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 25u);
    EXPECT_EQ(eng.crossPosts(), 1u)
        << "direct same-shard deliveries count as cross posts";
}

TEST(Sharded, BarrierWaitCountersAccumulate)
{
    // Every non-last arrival at the round barrier resolves either by
    // spinning or by a futex sleep; with two workers and a few rounds
    // the sum must be nonzero (which of the two depends on timing).
    ShardedEngine eng(2, 2, 10);
    for (Tick t = 1; t <= 20; ++t) {
        eng.queue(0).schedule(t * 7, "test.tick", [] {});
        eng.queue(1).schedule(t * 7, "test.tock", [] {});
    }
    eng.run();
    EXPECT_GT(eng.barrierSpinWakes() + eng.barrierFutexSleeps(), 0u);
}

TEST(Sharded, BarrierHookSeesAQuiescentWorld)
{
    ShardedEngine eng(2, 2, 10);
    std::uint64_t hooks = 0;
    eng.setBarrierHook([&hooks] { ++hooks; });
    for (Tick t = 1; t <= 10; ++t)
        eng.queue(t % 2).schedule(t * 25, "test.tick", [] {});
    eng.run();
    EXPECT_GT(hooks, 0u);
    EXPECT_GE(hooks, eng.windows());
}

TEST(Sharded, RunSetupInterleavesInCanonicalNodeOrder)
{
    // Same tick, same priority on every node: setup must execute them
    // in ascending node order, whatever the shard layout.
    ShardedEngine eng(3, 2, 10);
    std::vector<int> order;
    for (NodeId n = 0; n < 3; ++n) {
        eng.queue(n).schedule(42, "test.same",
                              [&order, n] { order.push_back(int(n)); });
    }
    eng.runSetup([] { return false; });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Sharded, RunSetupStopsAtThePredicate)
{
    ShardedEngine eng(2, 1, 10);
    int fired = 0;
    for (Tick t = 1; t <= 10; ++t)
        eng.queue(0).schedule(t, "test.tick", [&fired] { ++fired; });
    eng.runSetup([&fired] { return fired == 4; });
    EXPECT_EQ(fired, 4) << "checked after every event, not windowed";
    eng.run();
    EXPECT_EQ(fired, 10);
}

TEST(Sharded, WorkerExceptionPropagatesToTheCaller)
{
    ShardedEngine eng(2, 2, 10);
    eng.queue(1).schedule(5, "test.boom",
                          [] { panic("boom on a worker thread"); });
    EXPECT_THROW(eng.run(), PanicError);
}
