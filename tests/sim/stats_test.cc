/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace shrimp::stats;

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Average, TracksMeanMinMaxCount)
{
    Average a;
    a.sample(10);
    a.sample(2);
    a.sample(6);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 6.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.sum(), 18.0);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Average, ResetClears)
{
    Average a;
    a.sample(5);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    a.sample(-3);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), -3.0);
}

TEST(Histogram, BucketsSamplesUniformly)
{
    Histogram h(0, 100, 10);
    for (int v = 0; v < 100; ++v)
        h.sample(v);
    for (std::size_t b = 0; b < h.buckets(); ++b)
        EXPECT_EQ(h.bucket(b), 10u) << "bucket " << b;
    EXPECT_EQ(h.underflows(), 0u);
    EXPECT_EQ(h.overflows(), 0u);
}

TEST(Histogram, UnderOverflowCounted)
{
    Histogram h(10, 20, 2);
    h.sample(5);
    h.sample(25);
    h.sample(20); // hi is exclusive
    h.sample(10); // lo is inclusive
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, BucketBoundaries)
{
    Histogram h(0, 10, 5);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(4), 8.0);
    h.sample(1.999);
    h.sample(2.0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
}

TEST(Histogram, SummaryTracksAllSamples)
{
    Histogram h(0, 10, 2);
    h.sample(-5);
    h.sample(15);
    EXPECT_EQ(h.summary().count(), 2u);
    EXPECT_DOUBLE_EQ(h.summary().mean(), 5.0);
}

TEST(StatGroup, DumpsRegisteredStats)
{
    StatGroup g("node0.kernel");
    Scalar s;
    s += 7;
    Average a;
    a.sample(4);
    g.addScalar("faults", &s, "page faults");
    g.addAverage("latency", &a);
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("node0.kernel.faults 7"), std::string::npos);
    EXPECT_NE(out.find("page faults"), std::string::npos);
    EXPECT_NE(out.find("latency::mean 4"), std::string::npos);
}
