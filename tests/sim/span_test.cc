/**
 * @file
 * Unit tests for the transfer-lifecycle span registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../support/mini_json.hh"
#include "sim/json.hh"
#include "sim/span.hh"
#include "sim/trace.hh"

using namespace shrimp;
using namespace shrimp::span;

namespace
{

class SpanRegistryTest : public ::testing::Test
{
  protected:
    void SetUp() override { registry().clear(); }
    void TearDown() override { registry().clear(); }
};

} // namespace

TEST_F(SpanRegistryTest, LifecycleLatchStartComplete)
{
    auto id = registry().open(100, "udma0", 4096);
    EXPECT_GE(id, 1u);
    EXPECT_EQ(registry().activeCount(), 1u);

    const Span *s = registry().find(id);
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->active());
    EXPECT_EQ(s->latched, 100u);
    EXPECT_EQ(s->bytes, 4096u);
    EXPECT_EQ(s->owner, "udma0");

    registry().start(250, id, /*toDevice=*/true);
    s = registry().find(id);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->started, 250u);
    EXPECT_TRUE(s->toDevice);

    registry().close(1100, id, Outcome::Completed);
    EXPECT_EQ(registry().activeCount(), 0u);
    s = registry().find(id);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->outcome, Outcome::Completed);
    EXPECT_EQ(s->ended, 1100u);
    EXPECT_GT(s->totalUs(), 0.0);

    auto sum = registry().summary();
    EXPECT_EQ(sum.opened, 1u);
    EXPECT_EQ(sum.active, 0u);
    EXPECT_EQ(sum.count(Outcome::Completed), 1u);
    EXPECT_EQ(sum.bytesCompleted, 4096u);
}

TEST_F(SpanRegistryTest, IdsAreMonotonic)
{
    auto a = registry().open(1, "udma0", 64);
    auto b = registry().open(2, "udma0", 64);
    auto c = registry().open(3, "udma1", 64);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
}

TEST_F(SpanRegistryTest, StartCanClampBytes)
{
    auto id = registry().open(10, "udma0", 100000);
    registry().start(20, id, true, 4096);
    const Span *s = registry().find(id);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->bytes, 4096u);
}

TEST_F(SpanRegistryTest, TerminalOutcomesAreCounted)
{
    auto a = registry().open(1, "udma0", 64);
    registry().close(2, a, Outcome::Inval);
    auto b = registry().open(3, "udma0", 64);
    registry().close(4, b, Outcome::BadLoad);
    auto c = registry().open(5, "udma0", 64);
    registry().close(6, c, Outcome::Replaced);

    auto sum = registry().summary();
    EXPECT_EQ(sum.opened, 3u);
    EXPECT_EQ(sum.count(Outcome::Inval), 1u);
    EXPECT_EQ(sum.count(Outcome::BadLoad), 1u);
    EXPECT_EQ(sum.count(Outcome::Replaced), 1u);
    EXPECT_EQ(sum.bytesCompleted, 0u); // nothing completed
    EXPECT_EQ(registry().retained().size(), 3u);
    EXPECT_EQ(registry().retained().front().id, a);
}

TEST_F(SpanRegistryTest, RetainLimitBoundsMemoryNotAggregates)
{
    registry().setRetainLimit(4);
    for (int i = 0; i < 10; ++i) {
        auto id = registry().open(Tick(i), "udma0", 8);
        registry().close(Tick(i) + 1, id, Outcome::Completed);
    }
    EXPECT_EQ(registry().retained().size(), 4u);
    EXPECT_EQ(registry().summary().opened, 10u);
    EXPECT_EQ(registry().summary().count(Outcome::Completed), 10u);
    registry().setRetainLimit(256);
}

TEST_F(SpanRegistryTest, UnknownIdCloseIsIgnored)
{
    registry().close(5, 424242, Outcome::Completed);
    EXPECT_EQ(registry().summary().opened, 0u);
}

TEST_F(SpanRegistryTest, OutcomeNames)
{
    EXPECT_STREQ(outcomeName(Outcome::Active), "active");
    EXPECT_STREQ(outcomeName(Outcome::Completed), "completed");
    EXPECT_STREQ(outcomeName(Outcome::Inval), "inval");
    EXPECT_STREQ(outcomeName(Outcome::BadLoad), "bad_load");
    EXPECT_STREQ(outcomeName(Outcome::Replaced), "replaced");
}

TEST_F(SpanRegistryTest, TransitionsEmitXferTracePoints)
{
    trace::Capture cap({trace::Category::Xfer});
    auto id = registry().open(100, "udma0", 256);
    registry().start(200, id, true);
    registry().close(300, id, Outcome::Completed);
    EXPECT_TRUE(cap.contains("latched"));
    EXPECT_TRUE(cap.contains("transferring"));
    EXPECT_TRUE(cap.contains("completed"));
}

TEST_F(SpanRegistryTest, DumpJsonParsesAndRoundTrips)
{
    auto a = registry().open(100, "udma0", 4096);
    registry().start(200, a, true);
    registry().close(1000, a, Outcome::Completed);
    auto b = registry().open(1100, "udma0", 64);
    registry().close(1200, b, Outcome::Inval);

    std::ostringstream os;
    {
        sim::JsonWriter w(os);
        registry().dumpJson(w, /*includeSpans=*/true);
        w.finish();
    }

    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(os.str(), doc, &err)) << err;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.path("opened")->number, 2.0);
    EXPECT_EQ(doc.path("bytes_completed")->number, 4096.0);
    EXPECT_EQ(doc.path("outcomes.completed")->number, 1.0);
    EXPECT_EQ(doc.path("outcomes.inval")->number, 1.0);

    const minijson::Value *spans = doc.find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_TRUE(spans->isArray());
    ASSERT_EQ(spans->array.size(), 2u);
    const auto &first = spans->array[0];
    EXPECT_EQ(first.path("id")->number, double(a));
    EXPECT_EQ(first.path("bytes")->number, 4096.0);
    EXPECT_EQ(first.path("outcome")->str, "completed");
    EXPECT_EQ(spans->array[1].path("outcome")->str, "inval");

    // Summary-only form omits the per-span list.
    std::ostringstream os2;
    {
        sim::JsonWriter w(os2);
        registry().dumpJson(w, /*includeSpans=*/false);
        w.finish();
    }
    minijson::Value doc2;
    ASSERT_TRUE(minijson::parse(os2.str(), doc2, &err)) << err;
    EXPECT_EQ(doc2.find("spans"), nullptr);
    EXPECT_EQ(doc2.path("opened")->number, 2.0);
}
