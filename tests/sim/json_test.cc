/**
 * @file
 * Tests for the streaming JSON writer and the stats JSON dumper.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../support/mini_json.hh"
#include "sim/json.hh"
#include "sim/stats.hh"

using namespace shrimp;
using namespace shrimp::stats;

TEST(JsonWriter, WritesNestedDocument)
{
    std::ostringstream os;
    sim::JsonWriter w(os);
    w.beginObject();
    w.field("name", "bench");
    w.field("count", std::uint64_t(3));
    w.field("ratio", 0.5);
    w.field("flag", true);
    w.key("list");
    w.beginArray();
    w.value(std::uint64_t(1));
    w.value(std::uint64_t(2));
    w.endArray();
    w.key("nested");
    w.beginObject();
    w.field("x", -1.25);
    w.endObject();
    w.endObject();
    w.finish();

    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(os.str(), doc, &err)) << err;
    EXPECT_EQ(doc.path("name")->str, "bench");
    EXPECT_EQ(doc.path("count")->number, 3.0);
    EXPECT_DOUBLE_EQ(doc.path("ratio")->number, 0.5);
    EXPECT_TRUE(doc.path("flag")->boolean);
    ASSERT_EQ(doc.path("list")->array.size(), 2u);
    EXPECT_DOUBLE_EQ(doc.path("nested.x")->number, -1.25);
}

TEST(JsonWriter, EscapesStrings)
{
    std::ostringstream os;
    sim::JsonWriter w(os);
    w.beginObject();
    w.field("s", "a\"b\\c\nd\te");
    w.endObject();
    w.finish();

    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(os.str(), doc, &err)) << err;
    EXPECT_EQ(doc.path("s")->str, "a\"b\\c\nd\te");
}

TEST(JsonWriter, NonFiniteDoublesBecomeZero)
{
    std::ostringstream os;
    sim::JsonWriter w(os);
    w.beginObject();
    w.field("nan", 0.0 / 0.0);
    w.endObject();
    w.finish();

    minijson::Value doc;
    ASSERT_TRUE(minijson::parse(os.str(), doc, nullptr));
    EXPECT_EQ(doc.path("nan")->number, 0.0);
}

TEST(StatGroup, RegistersAndTextDumpsHistogram)
{
    StatGroup g("engine");
    Histogram h(0, 100, 10);
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(150); // overflow
    g.addHistogram("xfer_us", &h, "transfer latency");

    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("engine.xfer_us::mean"), std::string::npos);
    EXPECT_NE(out.find("::count 4"), std::string::npos);
    EXPECT_NE(out.find("::overflows 1"), std::string::npos);
    EXPECT_NE(out.find("engine.xfer_us::10-20 2"), std::string::npos);
    // Zero buckets are suppressed in the text form.
    EXPECT_EQ(out.find("engine.xfer_us::20-30"), std::string::npos);
}

TEST(StatGroup, DumpJsonIsValidWithStableKeyOrder)
{
    StatGroup g("kernel");
    Scalar zulu, alpha;
    zulu += 9;
    alpha += 4;
    // Registration order, not alphabetical order, must be preserved.
    g.addScalar("zulu", &zulu);
    g.addScalar("alpha", &alpha);
    Average lat;
    lat.sample(2);
    lat.sample(4);
    g.addAverage("lat", &lat);
    Distribution d;
    d.sample(3, 2);
    d.sample(7);
    g.addDistribution("dist", &d);
    Formula f;
    f = [] { return 42.0; };
    g.addFormula("answer", &f);

    std::ostringstream os;
    g.dumpJson(os);

    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(os.str(), doc, &err)) << err;
    const minijson::Value *grp = doc.find("kernel");
    ASSERT_NE(grp, nullptr);
    ASSERT_TRUE(grp->isObject());
    ASSERT_GE(grp->object.size(), 5u);
    EXPECT_EQ(grp->object[0].first, "zulu");
    EXPECT_EQ(grp->object[1].first, "alpha");
    EXPECT_EQ(grp->path("zulu")->number, 9.0);
    EXPECT_DOUBLE_EQ(grp->path("lat.mean")->number, 3.0);
    EXPECT_EQ(grp->path("lat.count")->number, 2.0);
    EXPECT_EQ(grp->path("dist.samples")->number, 3.0);
    EXPECT_EQ(grp->path("dist.counts.3")->number, 2.0);
    EXPECT_EQ(grp->path("answer")->number, 42.0);

    // Identical state twice -> byte-identical output (stable order).
    std::ostringstream os2;
    g.dumpJson(os2);
    EXPECT_EQ(os.str(), os2.str());
}

TEST(StatGroup, HistogramBucketsRoundTripThroughJson)
{
    StatGroup g("bus");
    Histogram h(0, 40, 4);
    h.sample(-1);         // underflow
    h.sample(5);          // bucket 0
    h.sample(15);         // bucket 1
    h.sample(15);         // bucket 1
    h.sample(39);         // bucket 3
    h.sample(40);         // overflow (hi exclusive)
    g.addHistogram("burst_bytes", &h);

    std::ostringstream os;
    g.dumpJson(os);

    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(os.str(), doc, &err)) << err;
    const minijson::Value *hist = doc.path("bus.burst_bytes");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->path("type")->str, "histogram");
    EXPECT_EQ(hist->path("count")->number, 6.0);
    EXPECT_EQ(hist->path("lo")->number, 0.0);
    EXPECT_EQ(hist->path("hi")->number, 40.0);
    EXPECT_EQ(hist->path("bucket_width")->number, 10.0);
    EXPECT_EQ(hist->path("underflows")->number, 1.0);
    EXPECT_EQ(hist->path("overflows")->number, 1.0);
    const minijson::Value *buckets = hist->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_EQ(buckets->array.size(), h.buckets());
    for (std::size_t b = 0; b < h.buckets(); ++b) {
        EXPECT_EQ(buckets->array[b].number, double(h.bucket(b)))
            << "bucket " << b;
    }
}
