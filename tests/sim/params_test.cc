/**
 * @file
 * Unit tests for MachineParams derived-latency helpers and the
 * calibration identities that anchor the reproduction.
 */

#include <gtest/gtest.h>

#include "sim/params.hh"

using namespace shrimp;
using namespace shrimp::sim;

TEST(MachineParams, CpuCycleMatchesFrequency)
{
    MachineParams p;
    // 60 MHz => 16666 ps (integer-truncated).
    EXPECT_NEAR(double(p.cpuCycle()), 1e12 / 60e6, 1.0);
}

TEST(MachineParams, InstrTicksScalesLinearly)
{
    MachineParams p;
    EXPECT_EQ(p.instrTicks(10), 10 * p.instrTicks(1));
    EXPECT_EQ(p.instrTicks(0), 0u);
}

TEST(MachineParams, EisaBurstBandwidthIdentity)
{
    MachineParams p;
    // 23 MB/s: 23 bytes take 1 us.
    EXPECT_NEAR(double(p.eisaBurst(23)), double(tickUs), 2.0);
    // Linear in size.
    EXPECT_NEAR(double(p.eisaBurst(4096)),
                4096.0 / p.eisaBurstBytesPerSec * 1e12, 2.0);
}

TEST(MachineParams, LinkFasterThanEisa)
{
    MachineParams p;
    EXPECT_LT(p.linkTransfer(4096), p.eisaBurst(4096))
        << "the backplane must outrun the EISA bus, as in SHRIMP";
}

TEST(MachineParams, InitiationCalibratesToPaper)
{
    MachineParams p;
    // Two uncached I/O references plus the alignment-check software
    // should land at the paper's ~2.8 us.
    Tick t = 2 * p.ioAccess()
             + p.instrTicks(p.udmaInitiateSoftwareInstr);
    EXPECT_NEAR(ticksToUs(t), 2.8, 0.1);
}

TEST(MachineParams, TraditionalPathIsHundredsOfInstructions)
{
    MachineParams p;
    std::uint32_t one_page =
        p.syscallInstr + p.dmaTranslateInstrPerPage
        + p.dmaPinInstrPerPage + p.dmaDescriptorInstr
        + p.dmaInterruptInstr + p.dmaUnpinInstrPerPage;
    EXPECT_GE(one_page, 1000u);
    EXPECT_LE(one_page, 5000u);
}

TEST(MachineParams, TimeUnitConversions)
{
    EXPECT_EQ(secondsToTicks(1.0), tickSec);
    EXPECT_DOUBLE_EQ(ticksToSeconds(tickSec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToUs(tickUs * 5), 5.0);
}

TEST(MachineParams, QuantumAndSwapAreSane)
{
    MachineParams p;
    EXPECT_GT(p.quantum(), p.instrTicks(p.contextSwitchInstr) * 10)
        << "quantum must dwarf the switch cost";
    EXPECT_GT(p.swapPage(), p.memAccess() * 1000)
        << "swap must dwarf memory access";
}
