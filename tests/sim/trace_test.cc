/**
 * @file
 * Tests for the debug-trace facility.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/system.hh"
#include "core/udma_lib.hh"
#include "sim/trace.hh"

using namespace shrimp;
using namespace shrimp::core;

TEST(Trace, DisabledByDefault)
{
    EXPECT_FALSE(trace::enabled(trace::Category::Dma));
    // Logging with no sink must be a no-op (and not crash).
    trace::log(0, trace::Category::Dma, "nothing");
}

TEST(Trace, CaptureEnablesAndRestores)
{
    {
        trace::Capture cap({trace::Category::Vm});
        EXPECT_TRUE(trace::enabled(trace::Category::Vm));
        EXPECT_FALSE(trace::enabled(trace::Category::Dma));
        trace::log(123, trace::Category::Vm, "hello ", 42);
        trace::log(124, trace::Category::Dma, "filtered");
        EXPECT_TRUE(cap.contains("123: vm: hello 42"));
        EXPECT_FALSE(cap.contains("filtered"));
    }
    EXPECT_FALSE(trace::enabled(trace::Category::Vm));
}

TEST(Trace, CategoryNames)
{
    EXPECT_STREQ(trace::categoryName(trace::Category::Dma), "dma");
    EXPECT_STREQ(trace::categoryName(trace::Category::Ni), "ni");
    EXPECT_STREQ(trace::categoryName(trace::Category::Bus), "bus");
    EXPECT_STREQ(trace::categoryName(trace::Category::Xfer), "xfer");
}

TEST(Trace, NestedCaptureRestoresMaskAndSink)
{
    trace::Capture outer({trace::Category::Dma});
    EXPECT_TRUE(trace::enabled(trace::Category::Dma));
    {
        trace::Capture inner({trace::Category::Vm});
        // The inner capture owns the enable mask exclusively...
        EXPECT_TRUE(trace::enabled(trace::Category::Vm));
        EXPECT_FALSE(trace::enabled(trace::Category::Dma));
        trace::log(1, trace::Category::Dma, "to-outer?");
        trace::log(2, trace::Category::Vm, "to-inner");
        EXPECT_TRUE(inner.contains("to-inner"));
        EXPECT_FALSE(inner.contains("to-outer?"));
    }
    // ...and its destruction restores the outer mask and sink.
    EXPECT_TRUE(trace::enabled(trace::Category::Dma));
    EXPECT_FALSE(trace::enabled(trace::Category::Vm));
    trace::log(3, trace::Category::Dma, "back-to-outer");
    trace::log(4, trace::Category::Vm, "still-filtered");
    EXPECT_TRUE(outer.contains("back-to-outer"));
    EXPECT_FALSE(outer.contains("still-filtered"));
    EXPECT_FALSE(outer.contains("to-inner"));
}

TEST(Trace, ApplySpecParsesCategoryLists)
{
    unsigned before = trace::enabledMask();
    std::ostringstream sink;

    EXPECT_TRUE(trace::applySpec("dma,xfer", &sink));
    EXPECT_TRUE(trace::enabled(trace::Category::Dma));
    EXPECT_TRUE(trace::enabled(trace::Category::Xfer));
    EXPECT_FALSE(trace::enabled(trace::Category::Os));

    EXPECT_TRUE(trace::applySpec("all", &sink));
    EXPECT_TRUE(trace::enabled(trace::Category::Bus));

    // Unknown tokens leave the mask untouched.
    unsigned all = trace::enabledMask();
    EXPECT_FALSE(trace::applySpec("dma,bogus", &sink));
    EXPECT_EQ(trace::enabledMask(), all);

    trace::setEnabledMask(before);
    trace::setSink(nullptr);
}

TEST(Trace, SimulationEmitsTracePoints)
{
    trace::Capture cap({trace::Category::Dma, trace::Category::Os,
                        trace::Category::Vm});

    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    cfg.node.devices.push_back(fb);
    System sys(cfg);
    sys.node(0).kernel().spawn(
        "tracer", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            co_await udmaTransfer(ctx, 0, win, buf, 256, true);
        });
    sys.runUntilAllDone();

    EXPECT_TRUE(cap.contains("os: switch to tracer"));
    EXPECT_TRUE(cap.contains("memory fault"));
    EXPECT_TRUE(cap.contains("proxy fault"));
    EXPECT_TRUE(cap.contains("dma: udma0: start mem->dev"));
    EXPECT_TRUE(cap.contains("count=256"));
}

TEST(Trace, NiTracePointsFire)
{
    trace::Capture cap({trace::Category::Ni});

    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.node.memBytes = 4 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;

    sys.node(1).kernel().spawn(
        "recv", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            shared.rxPages = co_await sysExportRange(ctx, buf, 4096);
            shared.exported = true;
            co_await pollWord(ctx, buf, 0x77);
        });
    auto &send = sys.node(0);
    send.kernel().spawn(
        "send", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 0x77);
            while (!shared.exported)
                co_await ctx.compute(500);
            Addr proxy = co_await sysMapRemoteRange(
                ctx, 0, *send.ni(), 1, shared.rxPages);
            co_await udmaTransfer(ctx, 0, proxy, buf, 64, true);
        });
    sys.runUntilAllDone(Tick(30) * tickSec);
    sys.run();

    EXPECT_TRUE(cap.contains("deliberate update: 64 B -> node 1"));
    EXPECT_TRUE(cap.contains("delivery complete from node 0"));
}
