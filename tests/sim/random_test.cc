/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/random.hh"

using namespace shrimp;
using namespace shrimp::sim;

TEST(Random, DeterministicFromSeed)
{
    Random a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Random, BelowStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, BelowZeroPanics)
{
    Random r(7);
    EXPECT_THROW(r.below(0), PanicError);
}

TEST(Random, BetweenInclusive)
{
    Random r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.between(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u) << "all values in range should occur";
}

TEST(Random, BetweenBadRangePanics)
{
    Random r(9);
    EXPECT_THROW(r.between(8, 5), PanicError);
}

TEST(Random, UnitInHalfOpenInterval)
{
    Random r(11);
    for (int i = 0; i < 1000; ++i) {
        double u = r.unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, ChanceRoughlyCalibrated)
{
    Random r(13);
    int hits = 0;
    constexpr int trials = 10000;
    for (int i = 0; i < trials; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(double(hits) / trials, 0.25, 0.03);
}

TEST(Random, NextCoversHighBits)
{
    Random r(17);
    std::uint64_t acc = 0;
    for (int i = 0; i < 64; ++i)
        acc |= r.next();
    EXPECT_EQ(acc >> 56, 0xffu) << "high byte should see all bits";
}
