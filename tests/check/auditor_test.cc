/**
 * @file
 * Adversarial tests for the invariant auditor: each test disables
 * exactly one invariant-maintaining kernel action (os::MutationKnobs),
 * forces the corrupting sequence, and asserts the auditor flags the
 * violation with the correct invariant ID — plus clean-state and
 * plumbing tests (parseRunOptions, enableAudit, fail-fast monitor).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "check/audit.hh"
#include "check/monitor.hh"
#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
fbConfig(std::uint64_t mem = 4 << 20)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = mem;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 512;
    fb.fbHeight = 512;
    cfg.node.devices.push_back(fb);
    return cfg;
}

bool
hasInvariant(const std::vector<audit::Violation> &vs,
             audit::Invariant inv)
{
    for (const auto &v : vs) {
        if (v.invariant == inv)
            return true;
    }
    return false;
}

/** Park a process that owns a dirty buffer and a mapped window, with
 *  a live proxy mapping for the buffer (it did one proxy access). */
os::Process &
spawnParked(Node &node, Addr &buf_out, Addr &win_out)
{
    struct Setup
    {
        Addr buf = 0;
        Addr win = 0;
    };
    auto setup = std::make_shared<Setup>();
    os::Process &pr = node.kernel().spawn(
        "victim", [setup](os::UserContext &ctx) -> sim::ProcTask {
            setup->buf = co_await ctx.sysAllocMemory(ctx.pageBytes());
            co_await ctx.store(setup->buf, 0xD1);
            setup->win =
                co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            // Touch the memory-proxy page so a proxy PTE exists
            // (a status LOAD through PROXY(buf)).
            co_await ctx.load(ctx.proxyAddr(setup->buf, 0));
            co_await ctx.syscall([](os::Kernel &, os::Process &,
                                    os::SyscallControl &sc) {
                sc.blocks = true;
            });
        });
    node.kernel().eq().run();
    EXPECT_EQ(pr.state(), os::ProcState::Blocked);
    buf_out = setup->buf;
    win_out = setup->win;
    return pr;
}

} // namespace

TEST(Auditor, CleanSystemHasNoViolations)
{
    System sys(fbConfig());
    auto &node = sys.node(0);
    Addr buf = 0, win = 0;
    spawnParked(node, buf, win);
    auto violations = audit::checkAll(sys);
    for (const auto &v : violations)
        ADD_FAILURE() << audit::describe(v);
    EXPECT_TRUE(violations.empty());
}

TEST(Auditor, StaleProxyPteAfterRemapIsI2)
{
    System sys(fbConfig());
    auto &node = sys.node(0);
    Addr buf = 0, win = 0;
    os::Process &pr = spawnParked(node, buf, win);

    // Corrupt: page the buffer out while leaving the proxy mapping
    // standing (the I2 shootdown is mutated away).
    os::MutationKnobs m;
    m.skipProxyShootdown = true;
    node.kernel().setMutations(m);
    Tick lat = 0;
    ASSERT_TRUE(node.kernel().evictPage(pr, buf, lat));

    auto violations = audit::checkAll(sys);
    EXPECT_TRUE(hasInvariant(violations, audit::Invariant::I2Mapping))
        << "a valid proxy PTE shadowing an evicted real page must "
           "be flagged as I2";
}

TEST(Auditor, WritableProxyOverCleanPageIsI3)
{
    System sys(fbConfig());
    auto &node = sys.node(0);
    Addr buf = 0, win = 0;
    os::Process &pr = spawnParked(node, buf, win);

    // Upgrade the proxy mapping to writable via a proxy STORE (an
    // Inval store: value 0 latches nothing but dirties the path).
    node.kernel().modelSwitchTo(pr);
    auto res = node.kernel().performUserAccess(
        pr, node.kernel().layout().proxy(buf, 0), true, 0);
    ASSERT_TRUE(res.ok);
    ASSERT_TRUE(audit::checkAll(sys).empty());

    // Corrupt: clean the page without write-protecting the proxy.
    os::MutationKnobs m;
    m.skipProxyWriteProtect = true;
    node.kernel().setMutations(m);
    Tick lat = 0;
    ASSERT_TRUE(node.kernel().cleanPage(pr, buf, lat));

    auto violations = audit::checkAll(sys);
    EXPECT_TRUE(hasInvariant(violations, audit::Invariant::I3Content))
        << "a writable proxy PTE over a clean real page must be "
           "flagged as I3";
}

TEST(Auditor, CrossProcessLatchAfterSwitchWithoutInvalIsI1)
{
    System sys(fbConfig());
    auto &node = sys.node(0);
    Addr buf_a = 0, win_a = 0, buf_b = 0, win_b = 0;
    os::Process &a = spawnParked(node, buf_a, win_a);
    os::Process &b = spawnParked(node, buf_b, win_b);

    // Process A latches a destination (STORE without the LOAD)...
    node.kernel().modelSwitchTo(a);
    auto res = node.kernel().performUserAccess(
        a, win_a, true, node.kernel().layout().pageBytes());
    ASSERT_TRUE(res.ok);
    ASSERT_NE(node.controller(0)->latchOwnerPid(), invalidPid);
    ASSERT_TRUE(audit::checkAll(sys).empty());

    // ...and a context switch to B "forgets" the I1 Inval.
    os::MutationKnobs m;
    m.skipInvalOnSwitch = true;
    node.kernel().setMutations(m);
    node.kernel().modelSwitchTo(b);

    auto violations = audit::checkAll(sys);
    EXPECT_TRUE(
        hasInvariant(violations, audit::Invariant::I1Atomicity))
        << "a latch surviving a switch to another process must be "
           "flagged as I1";

    // The honest switch clears it.
    node.kernel().setMutations(os::MutationKnobs{});
    node.kernel().modelSwitchTo(a);
    node.kernel().modelSwitchTo(b);
    EXPECT_TRUE(audit::checkAll(sys).empty());
}

TEST(Auditor, EvictedTransferPageIsI4)
{
    System sys(fbConfig());
    auto &node = sys.node(0);
    Addr buf = 0, win = 0;
    os::Process &pr = spawnParked(node, buf, win);

    // Fire a transfer (STORE dest, LOAD source) but do not run the
    // event queue: the transfer stays in flight.
    node.kernel().modelSwitchTo(pr);
    auto st = node.kernel().performUserAccess(
        pr, win, true, node.kernel().layout().pageBytes());
    ASSERT_TRUE(st.ok);
    auto ld = node.kernel().performUserAccess(
        pr, node.kernel().layout().proxy(buf, 0), false);
    ASSERT_TRUE(ld.ok);
    ASSERT_EQ(node.controller(0)->state(),
              dma::UdmaController::State::Transferring);
    ASSERT_TRUE(audit::checkAll(sys).empty());

    // Corrupt: evict the page under the running transfer.
    os::MutationKnobs m;
    m.ignoreI4PageBusy = true;
    node.kernel().setMutations(m);
    Tick lat = 0;
    ASSERT_TRUE(node.kernel().evictPage(pr, buf, lat));

    auto violations = audit::checkAll(sys);
    EXPECT_TRUE(
        hasInvariant(violations, audit::Invariant::I4Registers))
        << "an in-flight transfer referencing an evicted page must "
           "be flagged as I4";
}

TEST(Auditor, DescribeMentionsInvariantAndNode)
{
    audit::Violation v;
    v.invariant = audit::Invariant::I3Content;
    v.node = 2;
    v.pid = 7;
    v.device = 1;
    v.addr = 0x1000;
    v.detail = "writable proxy over clean page";
    std::string s = audit::describe(v);
    EXPECT_NE(s.find("I3"), std::string::npos);
    EXPECT_NE(s.find("node2"), std::string::npos);
    EXPECT_NE(s.find("pid7"), std::string::npos);
    EXPECT_NE(s.find("writable proxy"), std::string::npos);
}

// ------------------------------------------------------------- monitor

TEST(Monitor, FailFastThrowsViolationError)
{
    System sys(fbConfig());
    auto &node = sys.node(0);
    Addr buf_a = 0, win_a = 0, buf_b = 0, win_b = 0;
    os::Process &a = spawnParked(node, buf_a, win_a);
    os::Process &b = spawnParked(node, buf_b, win_b);

    ASSERT_TRUE(sys.enableAudit("on-switch", /*fail_fast=*/true));
    ASSERT_NE(sys.auditMonitor(), nullptr);
    EXPECT_EQ(sys.auditMonitor()->mode(), audit::Mode::OnSwitch);

    node.kernel().modelSwitchTo(a);
    auto res = node.kernel().performUserAccess(
        a, win_a, true, node.kernel().layout().pageBytes());
    ASSERT_TRUE(res.ok);

    os::MutationKnobs m;
    m.skipInvalOnSwitch = true;
    node.kernel().setMutations(m);
    // The monitor audits inside the switch and throws on the I1 hole.
    EXPECT_THROW(node.kernel().modelSwitchTo(b),
                 audit::ViolationError);

    try {
        node.kernel().modelSwitchTo(a);
        node.kernel().modelSwitchTo(b);
    } catch (const audit::ViolationError &e) {
        ASSERT_FALSE(e.violations().empty());
        EXPECT_EQ(e.violations().front().invariant,
                  audit::Invariant::I1Atomicity);
    }
}

TEST(Monitor, RecordingMonitorCountsViolations)
{
    System sys(fbConfig());
    auto &node = sys.node(0);
    Addr buf_a = 0, win_a = 0, buf_b = 0, win_b = 0;
    os::Process &a = spawnParked(node, buf_a, win_a);
    os::Process &b = spawnParked(node, buf_b, win_b);

    ASSERT_TRUE(sys.enableAudit("on-switch"));
    audit::Monitor *mon = sys.auditMonitor();
    ASSERT_NE(mon, nullptr);

    node.kernel().modelSwitchTo(a);
    auto res = node.kernel().performUserAccess(
        a, win_a, true, node.kernel().layout().pageBytes());
    ASSERT_TRUE(res.ok);

    os::MutationKnobs m;
    m.skipInvalOnSwitch = true;
    node.kernel().setMutations(m);
    node.kernel().modelSwitchTo(b);

    EXPECT_GE(mon->audits(), 1u);
    EXPECT_GE(mon->violationCount(), 1u);
    ASSERT_FALSE(mon->violations().empty());
    EXPECT_EQ(mon->violations().front().invariant,
              audit::Invariant::I1Atomicity);

    // Turning auditing off detaches the hooks.
    ASSERT_TRUE(sys.enableAudit("off"));
    EXPECT_EQ(sys.auditMonitor(), nullptr);
}

TEST(Monitor, MonitoredSimulationStaysClean)
{
    // A full scheduled run (spawn / transfer / switch / complete)
    // under every-event fail-fast auditing: the real kernel must
    // never trip the auditor.
    System sys(fbConfig());
    ASSERT_TRUE(sys.enableAudit("every-event", /*fail_fast=*/true));
    auto &node = sys.node(0);

    for (int p = 0; p < 2; ++p) {
        node.kernel().spawn(
            "worker" + std::to_string(p),
            [](os::UserContext &ctx) -> sim::ProcTask {
                Addr buf = co_await ctx.sysAllocMemory(4096);
                co_await ctx.store(buf, 0xAB);
                Addr win =
                    co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
                dma::Status st = co_await udmaStart(
                    ctx, win, ctx.proxyAddr(buf, 0), 4096);
                if (!st.initiationFailed)
                    co_await udmaWait(ctx, ctx.proxyAddr(buf, 0));
                co_await ctx.yield();
            });
    }
    EXPECT_NO_THROW(sys.runUntilAllDone());
    ASSERT_NE(sys.auditMonitor(), nullptr);
    EXPECT_GE(sys.auditMonitor()->audits(), 1u);
    EXPECT_EQ(sys.auditMonitor()->violationCount(), 0u);
}

// --------------------------------------------------------- run options

TEST(RunOptions, AuditSpecParsedAndStripped)
{
    const char *argv_in[] = {"prog", "--audit=on-switch", "keep"};
    int argc = 3;
    char *argv[3];
    for (int i = 0; i < argc; ++i)
        argv[i] = const_cast<char *>(argv_in[i]);

    RunOptions opts = parseRunOptions(argc, argv);
    EXPECT_TRUE(opts.ok);
    EXPECT_EQ(opts.auditSpec, "on-switch");
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "keep");

    // The spec applies to the next System constructed.
    {
        System sys(fbConfig());
        ASSERT_NE(sys.auditMonitor(), nullptr);
        EXPECT_EQ(sys.auditMonitor()->mode(), audit::Mode::OnSwitch);
    }

    // Reset the process-global pending spec for later tests.
    const char *off[] = {"prog", "--audit=off"};
    int argc2 = 2;
    char *argv2[2];
    for (int i = 0; i < argc2; ++i)
        argv2[i] = const_cast<char *>(off[i]);
    parseRunOptions(argc2, argv2);
    System sys2(fbConfig());
    EXPECT_EQ(sys2.auditMonitor(), nullptr);
}

TEST(RunOptions, BadAuditSpecIsRejected)
{
    const char *argv_in[] = {"prog", "--audit=sometimes"};
    int argc = 2;
    char *argv[2];
    for (int i = 0; i < argc; ++i)
        argv[i] = const_cast<char *>(argv_in[i]);
    RunOptions opts = parseRunOptions(argc, argv);
    EXPECT_FALSE(opts.ok);
}

TEST(AuditMode, ParseModeRoundTrips)
{
    audit::Mode m;
    ASSERT_TRUE(audit::parseMode("off", m));
    EXPECT_EQ(m, audit::Mode::Off);
    ASSERT_TRUE(audit::parseMode("on-switch", m));
    EXPECT_EQ(m, audit::Mode::OnSwitch);
    ASSERT_TRUE(audit::parseMode("every-event", m));
    EXPECT_EQ(m, audit::Mode::EveryEvent);
    EXPECT_FALSE(audit::parseMode("", m));
    EXPECT_FALSE(audit::parseMode("always", m));
    EXPECT_STREQ(audit::modeName(audit::Mode::EveryEvent),
                 "every-event");
}
