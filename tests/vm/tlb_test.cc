/**
 * @file
 * Unit tests for the TLB.
 */

#include <gtest/gtest.h>

#include "vm/tlb.hh"

using namespace shrimp;
using namespace shrimp::vm;

namespace
{

Pte
pte(Addr f)
{
    Pte p;
    p.frameAddr = f;
    p.valid = true;
    return p;
}

} // namespace

TEST(Tlb, MissThenHit)
{
    Tlb tlb(4);
    Pte p = pte(0x1000);
    EXPECT_EQ(tlb.lookup(1), nullptr);
    tlb.insert(1, &p);
    EXPECT_EQ(tlb.lookup(1), &p);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(2);
    Pte a = pte(0xA000), b = pte(0xB000), c = pte(0xC000);
    tlb.insert(1, &a);
    tlb.insert(2, &b);
    (void)tlb.lookup(1); // 1 is now most recent
    tlb.insert(3, &c);   // evicts 2
    EXPECT_EQ(tlb.lookup(1), &a);
    EXPECT_EQ(tlb.lookup(2), nullptr);
    EXPECT_EQ(tlb.lookup(3), &c);
}

TEST(Tlb, InsertSameVpnUpdates)
{
    Tlb tlb(2);
    Pte a = pte(0xA000), b = pte(0xB000);
    tlb.insert(1, &a);
    tlb.insert(1, &b);
    EXPECT_EQ(tlb.lookup(1), &b);
    EXPECT_EQ(tlb.entries(), 1u);
}

TEST(Tlb, InvalidatePage)
{
    Tlb tlb(4);
    Pte a = pte(0xA000), b = pte(0xB000);
    tlb.insert(1, &a);
    tlb.insert(2, &b);
    tlb.invalidatePage(1);
    EXPECT_EQ(tlb.lookup(1), nullptr);
    EXPECT_EQ(tlb.lookup(2), &b);
    tlb.invalidatePage(99); // no-op
}

TEST(Tlb, FlushAll)
{
    Tlb tlb(4);
    Pte a = pte(0xA000), b = pte(0xB000);
    tlb.insert(1, &a);
    tlb.insert(2, &b);
    tlb.flushAll();
    EXPECT_EQ(tlb.entries(), 0u);
    EXPECT_EQ(tlb.lookup(1), nullptr);
    EXPECT_EQ(tlb.lookup(2), nullptr);
}

TEST(Tlb, CapacityRespected)
{
    Tlb tlb(8);
    std::vector<Pte> ptes(20, pte(0));
    for (std::uint64_t i = 0; i < 20; ++i)
        tlb.insert(i, &ptes[i]);
    EXPECT_EQ(tlb.entries(), 8u);
}
