/**
 * @file
 * Unit tests for the proxy-space address map (paper Figures 2/3).
 */

#include <gtest/gtest.h>

#include "vm/layout.hh"

using namespace shrimp;
using namespace shrimp::vm;

namespace
{

AddressLayout
makeLayout()
{
    return AddressLayout(64 << 20, 4096, 3);
}

} // namespace

TEST(AddressLayout, MemoryRegionDecodes)
{
    auto layout = makeLayout();
    auto d = layout.decode(0x1234);
    EXPECT_EQ(d.space, Space::Memory);
    EXPECT_EQ(d.offset, 0x1234u);
}

TEST(AddressLayout, ProxyRoundTrip)
{
    auto layout = makeLayout();
    for (unsigned dev = 0; dev < 3; ++dev) {
        Addr real = 0xABC000 + dev;
        Addr proxy = layout.proxy(real, dev);
        EXPECT_EQ(layout.unproxy(proxy, dev), real);
        auto d = layout.decode(proxy);
        EXPECT_EQ(d.space, Space::MemProxy);
        EXPECT_EQ(d.device, dev);
        EXPECT_EQ(d.offset, real) << "PROXY^-1 is applied by decode";
    }
}

TEST(AddressLayout, DeviceProxyRegionsAreDisjointPerDevice)
{
    auto layout = makeLayout();
    for (unsigned dev = 0; dev < 3; ++dev) {
        Addr a = layout.devProxyBase(dev) + 0x42;
        auto d = layout.decode(a);
        EXPECT_EQ(d.space, Space::DevProxy);
        EXPECT_EQ(d.device, dev);
        EXPECT_EQ(d.offset, 0x42u);
    }
    EXPECT_NE(layout.devProxyBase(0), layout.devProxyBase(1));
    EXPECT_NE(layout.memProxyBase(0), layout.memProxyBase(1));
}

TEST(AddressLayout, BeyondLastDeviceIsInvalid)
{
    auto layout = makeLayout();
    Addr past = AddressLayout::regionStride * (1 + 2 * 3);
    EXPECT_EQ(layout.decode(past).space, Space::Invalid);
}

TEST(AddressLayout, PageHelpers)
{
    auto layout = makeLayout();
    EXPECT_EQ(layout.pageOf(4096), 1u);
    EXPECT_EQ(layout.pageOffset(4097), 1u);
    EXPECT_EQ(layout.pageBase(8191), 4096u);
    EXPECT_EQ(layout.bytesToPageEnd(4096), 4096u);
    EXPECT_EQ(layout.bytesToPageEnd(4097), 4095u);
}

TEST(AddressLayout, ProxyOfPageBoundaryKeepsOffsets)
{
    auto layout = makeLayout();
    Addr real = 5 * 4096 + 12;
    Addr proxy = layout.proxy(real, 1);
    EXPECT_EQ(layout.pageOffset(proxy), layout.pageOffset(real));
}

TEST(AddressLayout, RejectsOversizeMemory)
{
    EXPECT_THROW(AddressLayout(AddressLayout::regionStride + 1, 4096, 1),
                 FatalError);
}

TEST(AddressLayout, RejectsNonPowerOfTwoPages)
{
    EXPECT_THROW(AddressLayout(1 << 20, 3000, 1), FatalError);
}
