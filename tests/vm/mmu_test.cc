/**
 * @file
 * Unit tests for the MMU: translation, permission checking, and
 * hardware-managed referenced/dirty bits — the machinery UDMA borrows
 * for protection (paper Section 4).
 */

#include <gtest/gtest.h>

#include "vm/mmu.hh"

using namespace shrimp;
using namespace shrimp::vm;

namespace
{

struct MmuFixture : ::testing::Test
{
    AddressLayout layout{1 << 20, 4096, 1};
    Mmu mmu{layout, 4};
    PageTable pt;

    void
    SetUp() override
    {
        mmu.activate(&pt);
    }

    Pte &
    map(std::uint64_t vpn, Addr frame, bool writable)
    {
        Pte p;
        p.frameAddr = frame;
        p.valid = true;
        p.writable = writable;
        return pt.install(vpn, p);
    }
};

} // namespace

TEST_F(MmuFixture, TranslatesWithOffset)
{
    map(5, 0x8000, true);
    auto r = mmu.translate(5 * 4096 + 123, false);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.paddr, 0x8000u + 123);
}

TEST_F(MmuFixture, NotPresentFault)
{
    auto r = mmu.translate(5 * 4096, false);
    EXPECT_EQ(r.fault, Fault::NotPresent);
}

TEST_F(MmuFixture, InvalidPteFaults)
{
    Pte p;
    p.valid = false;
    pt.install(5, p);
    auto r = mmu.translate(5 * 4096, false);
    EXPECT_EQ(r.fault, Fault::NotPresent);
}

TEST_F(MmuFixture, ProtectionFaultOnWriteToReadOnly)
{
    map(5, 0x8000, false);
    EXPECT_TRUE(mmu.translate(5 * 4096, false).ok());
    EXPECT_EQ(mmu.translate(5 * 4096, true).fault, Fault::Protection);
}

TEST_F(MmuFixture, SetsReferencedAndDirtyBits)
{
    Pte &p = map(5, 0x8000, true);
    EXPECT_FALSE(p.referenced);
    (void)mmu.translate(5 * 4096, false);
    EXPECT_TRUE(p.referenced);
    EXPECT_FALSE(p.dirty);
    (void)mmu.translate(5 * 4096, true);
    EXPECT_TRUE(p.dirty);
}

TEST_F(MmuFixture, FaultDoesNotMutateBits)
{
    Pte &p = map(5, 0x8000, false);
    (void)mmu.translate(5 * 4096, true); // protection fault
    EXPECT_FALSE(p.referenced);
    EXPECT_FALSE(p.dirty);
}

TEST_F(MmuFixture, TlbHitOnSecondAccess)
{
    map(5, 0x8000, true);
    auto r1 = mmu.translate(5 * 4096, false);
    EXPECT_FALSE(r1.tlbHit);
    auto r2 = mmu.translate(5 * 4096 + 8, false);
    EXPECT_TRUE(r2.tlbHit);
}

TEST_F(MmuFixture, ActivateFlushesTlb)
{
    map(5, 0x8000, true);
    (void)mmu.translate(5 * 4096, false);
    PageTable other;
    mmu.activate(&other);
    EXPECT_EQ(mmu.translate(5 * 4096, false).fault, Fault::NotPresent);
    mmu.activate(&pt);
    auto r = mmu.translate(5 * 4096, false);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.tlbHit) << "switch must have flushed the TLB";
}

TEST_F(MmuFixture, InvalidatePageDropsStaleTranslation)
{
    map(5, 0x8000, true);
    (void)mmu.translate(5 * 4096, false);
    mmu.invalidatePage(5);
    pt.remove(5);
    EXPECT_EQ(mmu.translate(5 * 4096, false).fault,
              Fault::NotPresent);
}

TEST_F(MmuFixture, NoActiveTableFaults)
{
    mmu.activate(nullptr);
    EXPECT_EQ(mmu.translate(0, false).fault, Fault::NotPresent);
}

TEST_F(MmuFixture, ProxyPagePermissionCheckedLikeAnyPage)
{
    // A read-only proxy mapping: LOAD ok, STORE faults — exactly how
    // I3 forces the upgrade path.
    Addr proxy_frame = layout.proxy(0x8000, 0);
    std::uint64_t proxy_vpn = layout.pageOf(layout.proxy(5 * 4096, 0));
    Pte p;
    p.frameAddr = proxy_frame;
    p.valid = true;
    p.writable = false;
    pt.install(proxy_vpn, p);
    Addr va = layout.proxy(5 * 4096, 0);
    EXPECT_TRUE(mmu.translate(va, false).ok());
    EXPECT_EQ(mmu.translate(va, true).fault, Fault::Protection);
}
