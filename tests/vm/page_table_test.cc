/**
 * @file
 * Unit tests for the per-process page table.
 */

#include <gtest/gtest.h>

#include "vm/page_table.hh"

using namespace shrimp;
using namespace shrimp::vm;

namespace
{

Pte
makePte(Addr frame, bool writable = true)
{
    Pte p;
    p.frameAddr = frame;
    p.valid = true;
    p.writable = writable;
    return p;
}

} // namespace

TEST(PageTable, InstallAndLookup)
{
    PageTable pt;
    pt.install(5, makePte(0x3000));
    Pte *p = pt.lookup(5);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->frameAddr, 0x3000u);
    EXPECT_TRUE(p->valid);
}

TEST(PageTable, LookupMissingReturnsNull)
{
    PageTable pt;
    EXPECT_EQ(pt.lookup(5), nullptr);
    pt.install(5, makePte(0x3000));
    EXPECT_EQ(pt.lookup(6), nullptr);
}

TEST(PageTable, InstallOverwrites)
{
    PageTable pt;
    pt.install(5, makePte(0x3000));
    pt.install(5, makePte(0x4000, false));
    Pte *p = pt.lookup(5);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->frameAddr, 0x4000u);
    EXPECT_FALSE(p->writable);
    EXPECT_EQ(pt.size(), 1u);
}

TEST(PageTable, RemoveDeletesEntry)
{
    PageTable pt;
    pt.install(5, makePte(0x3000));
    pt.remove(5);
    EXPECT_EQ(pt.lookup(5), nullptr);
    EXPECT_EQ(pt.size(), 0u);
    pt.remove(5); // idempotent
}

TEST(PageTable, PointerStabilityAcrossInserts)
{
    // The TLB caches Pte pointers; node-based storage must keep them
    // valid as unrelated entries come and go.
    PageTable pt;
    Pte *p5 = &pt.install(5, makePte(0x5000));
    for (std::uint64_t v = 100; v < 200; ++v)
        pt.install(v, makePte(v << 12));
    for (std::uint64_t v = 100; v < 150; ++v)
        pt.remove(v);
    EXPECT_EQ(pt.lookup(5), p5);
    EXPECT_EQ(p5->frameAddr, 0x5000u);
}

TEST(PageTable, ForEachVisitsAllAndMutates)
{
    PageTable pt;
    pt.install(1, makePte(0x1000));
    pt.install(2, makePte(0x2000));
    pt.install(3, makePte(0x3000));
    std::size_t count = 0;
    pt.forEach([&](std::uint64_t vpn, Pte &pte) {
        ++count;
        pte.referenced = vpn == 2;
    });
    EXPECT_EQ(count, 3u);
    EXPECT_FALSE(pt.lookup(1)->referenced);
    EXPECT_TRUE(pt.lookup(2)->referenced);
}

TEST(PageTable, ConstLookup)
{
    PageTable pt;
    pt.install(9, makePte(0x9000));
    const PageTable &cpt = pt;
    const Pte *p = cpt.lookup(9);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->frameAddr, 0x9000u);
}
