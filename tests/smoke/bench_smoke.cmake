# Smoke test run via `cmake -P`: execute a benchmark with
# --stats-json and validate the machine-readable result file.
#
# Required -D variables:
#   BENCH     - benchmark executable
#   VALIDATOR - json_validate executable
#   OUT       - path for the JSON result file

foreach(var BENCH VALIDATOR OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "bench_smoke.cmake: ${var} not set")
    endif()
endforeach()

file(REMOVE "${OUT}")

execute_process(
    COMMAND "${BENCH}" "--stats-json=${OUT}"
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_smoke.cmake: ${BENCH} exited with ${bench_rc}")
endif()

if(NOT EXISTS "${OUT}")
    message(FATAL_ERROR
        "bench_smoke.cmake: ${BENCH} did not write ${OUT}")
endif()

# The keys every benchmark report must carry: the kernel invariant
# counters, a bucketed latency histogram, and the span summary.
execute_process(
    COMMAND "${VALIDATOR}" "${OUT}"
        name
        counters.i1_invals
        counters.i2_shootdowns
        counters.i3_dirty_faults
        counters.transfers_started
        histograms.latency_us.buckets
        spans.opened
    RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_smoke.cmake: ${OUT} failed validation")
endif()
