# Smoke test run via `cmake -P`: execute the multinode benchmark with
# --profile= and validate both artifacts — the Perfetto trace must
# pass the structural checker and the stats JSON must carry the
# profile time-budget block alongside the usual counters.
#
# Required -D variables:
#   BENCH          - multinode_traffic executable
#   TRACE_VALIDATOR - trace_validate executable
#   JSON_VALIDATOR - json_validate executable
#   TRACE          - path for the trace-event JSON
#   STATS          - path for the stats JSON

foreach(var BENCH TRACE_VALIDATOR JSON_VALIDATOR TRACE STATS)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "trace_smoke.cmake: ${var} not set")
    endif()
endforeach()

file(REMOVE "${TRACE}" "${STATS}")

execute_process(
    COMMAND "${BENCH}" --nodes=8 --shards=2 --records=8
        "--profile=${TRACE}" "--stats-json=${STATS}"
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "trace_smoke.cmake: ${BENCH} exited with ${bench_rc}")
endif()

foreach(artifact TRACE STATS)
    if(NOT EXISTS "${${artifact}}")
        message(FATAL_ERROR
            "trace_smoke.cmake: ${BENCH} did not write ${${artifact}}")
    endif()
endforeach()

# Structural validation: balanced B/E per track, monotonic wall
# timestamps, labelled tracks, and a sensible minimum event count
# (8 nodes / 2 shards produces hundreds of window slices).
execute_process(
    COMMAND "${TRACE_VALIDATOR}" "${TRACE}" --min-events=100
    RESULT_VARIABLE trace_rc)
if(NOT trace_rc EQUAL 0)
    message(FATAL_ERROR
        "trace_smoke.cmake: ${TRACE} failed trace validation")
endif()

# The bench JSON must carry the same budget machine-readably.
execute_process(
    COMMAND "${JSON_VALIDATOR}" "${STATS}"
        profile.accounted_frac
        profile.totals_ns.execute
        profile.per_shard
        counters.transfers_started
        histograms.latency_us.buckets
    RESULT_VARIABLE stats_rc)
if(NOT stats_rc EQUAL 0)
    message(FATAL_ERROR
        "trace_smoke.cmake: ${STATS} failed validation")
endif()
