/**
 * @file
 * Determinism: the simulator must produce bit-identical results and
 * tick counts for identical configurations — the property that makes
 * every experiment in EXPERIMENTS.md exactly reproducible.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/system.hh"
#include "core/udma_lib.hh"
#include "sim/random.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

struct RunRecord
{
    Tick endTick = 0;
    std::uint64_t events = 0;
    std::string stats;
};

RunRecord
runOnce()
{
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.node.memBytes = 4 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;

    auto &recv = sys.node(1);
    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(2 * 4096);
            shared.rxPages =
                co_await sysExportRange(ctx, buf, 2 * 4096);
            shared.exported = true;
            co_await pollWord(ctx, buf + 4096 - 8, 0xF1A6);
        });

    auto &send = sys.node(0);
    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            for (unsigned i = 0; i < 512; ++i)
                co_await ctx.store(buf + i * 8,
                                   i + 1 == 512 ? 0xF1A6 : i);
            while (!shared.exported)
                co_await ctx.compute(500);
            Addr proxy = co_await sysMapRemoteRange(
                ctx, 0, *send.ni(), recv.id(), shared.rxPages);
            co_await udmaTransfer(ctx, 0, proxy, buf, 4096, true);
        });

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run();

    RunRecord rec;
    rec.endTick = sys.eq().now();
    rec.events = sys.eq().eventsExecuted();
    std::ostringstream os;
    sys.dumpStats(os);
    rec.stats = os.str();
    return rec;
}

} // namespace

TEST(Determinism, IdenticalRunsProduceIdenticalResults)
{
    RunRecord a = runOnce();
    RunRecord b = runOnce();
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(Determinism, SeededWorkloadsRepeat)
{
    auto run = [](std::uint64_t seed) {
        sim::Random rng(seed);
        std::uint64_t acc = 0;
        for (int i = 0; i < 1000; ++i)
            acc ^= rng.next() * (i + 1);
        return acc;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}
