/**
 * @file
 * Observability integration tests: the transfer-span registry, the
 * kernel invariant counters, and the machine-readable stats dump,
 * exercised through full-System runs rather than unit fixtures.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../support/mini_json.hh"
#include "core/system.hh"
#include "core/udma_lib.hh"
#include "sim/span.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

class ObservabilityTest : public ::testing::Test
{
  protected:
    void SetUp() override { span::registry().clear(); }
    void TearDown() override { span::registry().clear(); }
};

} // namespace

/**
 * Invariant I1: a context switch while a destination is latched (the
 * STORE happened, the initiating LOAD did not) must Inval the pending
 * sequence — visible in the kernel counter, the controller counter,
 * and as a span closed with outcome Inval.
 */
TEST_F(ObservabilityTest, ContextSwitchInvalAbortsLatchedSpan)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    cfg.params.quantumUs = 50.0; // switch aggressively
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    cfg.node.devices.push_back(fb);
    System sys(cfg);
    auto &node = sys.node(0);

    bool latched = false;
    node.kernel().spawn(
        "latcher", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            // First half of the two-reference sequence only: latch
            // the destination, never issue the initiating LOAD.
            co_await ctx.store(win, 256);
            latched = true;
            // Burn CPU across several quanta so a switch lands while
            // the latch is pending.
            for (int i = 0; i < 20; ++i)
                co_await ctx.compute(20000);
        });
    node.kernel().spawn(
        "competitor", [&](os::UserContext &ctx) -> sim::ProcTask {
            for (int i = 0; i < 20; ++i)
                co_await ctx.compute(20000);
        });

    sys.runUntilAllDone(Tick(30) * tickSec);

    EXPECT_GE(node.kernel().i1Invals(), 1u);
    EXPECT_GE(node.controller(0)->invalsApplied(), 1u);
    EXPECT_TRUE(latched);

    auto sum = span::registry().summary();
    EXPECT_GE(sum.opened, 1u);
    ASSERT_GE(sum.count(span::Outcome::Inval), 1u);
    EXPECT_EQ(sum.count(span::Outcome::Completed), 0u);
    EXPECT_EQ(sum.active, 0u);

    // The retained span shows the latch but no transfer start.
    bool found = false;
    for (const auto &s : span::registry().retained()) {
        if (s.outcome != span::Outcome::Inval)
            continue;
        found = true;
        EXPECT_EQ(s.bytes, 256u);
        EXPECT_EQ(s.started, 0u);
        EXPECT_GT(s.ended, s.latched);
    }
    EXPECT_TRUE(found);
}

/** A completed transfer leaves a Completed span with sane phases. */
TEST_F(ObservabilityTest, CompletedTransferClosesSpan)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    cfg.node.devices.push_back(fb);
    System sys(cfg);
    auto &node = sys.node(0);

    node.kernel().spawn(
        "writer", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 0xAB);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            co_await udmaTransfer(ctx, 0, win, buf, 512, true);
        });
    sys.runUntilAllDone();

    auto sum = span::registry().summary();
    EXPECT_GE(sum.count(span::Outcome::Completed), 1u);
    EXPECT_GE(sum.bytesCompleted, 512u);
    EXPECT_EQ(sum.active, 0u);

    const auto &spans = span::registry().retained();
    ASSERT_FALSE(spans.empty());
    const auto &s = spans.front();
    EXPECT_EQ(s.outcome, span::Outcome::Completed);
    EXPECT_TRUE(s.toDevice);
    EXPECT_GE(s.started, s.latched);
    EXPECT_GT(s.ended, s.started);
    EXPECT_GT(s.totalUs(), 0.0);

    // The engine's latency histogram saw the same transfer.
    EXPECT_EQ(node.controller(0)->transfersStarted(), 1u);
}

/** System::dumpStatsJson emits one parseable document covering every
 *  component group, the invariant counters, and the span summary. */
TEST_F(ObservabilityTest, DumpStatsJsonParses)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    cfg.node.devices.push_back(fb);
    System sys(cfg);
    auto &node = sys.node(0);

    node.kernel().spawn(
        "writer", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 0xCD);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            co_await udmaTransfer(ctx, 0, win, buf, 4096, true);
        });
    sys.runUntilAllDone();

    std::ostringstream os;
    sys.dumpStatsJson(os);

    minijson::Value doc;
    std::string err;
    ASSERT_TRUE(minijson::parse(os.str(), doc, &err)) << err;

    EXPECT_GT(doc.path("sim.ticks")->number, 0.0);
    const minijson::Value *nodes = doc.find("nodes");
    ASSERT_NE(nodes, nullptr);
    ASSERT_EQ(nodes->array.size(), 1u);
    const minijson::Value &n0 = nodes->array[0];

    // Kernel group with the invariant counters.
    ASSERT_NE(n0.path("kernel.i1_invals"), nullptr);
    ASSERT_NE(n0.path("kernel.i2_shootdowns"), nullptr);
    ASSERT_NE(n0.path("kernel.i3_dirty_faults"), nullptr);
    ASSERT_NE(n0.path("kernel.fault_us.buckets"), nullptr);

    // Controller and engine groups ("udma0", "udma0.engine").
    EXPECT_EQ(n0.path("udma0.transfersStarted")->number, 1.0);
    const minijson::Value *xfer = n0.path("udma0.engine.xfer_us");
    ASSERT_NE(xfer, nullptr);
    EXPECT_EQ(xfer->path("type")->str, "histogram");
    EXPECT_EQ(xfer->path("count")->number, 1.0);
    ASSERT_NE(n0.path("bus.burst_bytes.buckets"), nullptr);

    // Span summary rides along.
    EXPECT_GE(doc.path("spans.opened")->number, 1.0);
    EXPECT_GE(doc.path("spans.outcomes.completed")->number, 1.0);
}
