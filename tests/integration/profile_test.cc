/**
 * @file
 * End-to-end profiling contract: attaching a ShardProfiler (and a
 * TraceSink) to the sharded ring workload observes the run without
 * perturbing it — simulated time and digests stay bit-identical —
 * while the time budget accounts for (nearly) all parallel wall time
 * and the trace carries wall, span, and fault events. Also covers the
 * flight recorder's graveyard across a full System lifecycle.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/flight_recorder.hh"
#include "sim/profiler.hh"
#include "sim/span.hh"
#include "sim/trace_sink.hh"
#include "workload/ring.hh"

using namespace shrimp;
using workload::RingConfig;
using workload::RingResult;

namespace
{

RingConfig
smallRing(unsigned shards)
{
    RingConfig cfg;
    cfg.nodes = 4;
    cfg.records = 8;
    cfg.recordBytes = 1024;
    cfg.shards = shards;
    return cfg;
}

} // namespace

TEST(ProfileIntegration, ProfilerOnlyObserves)
{
    RingResult plain = workload::runRing(smallRing(2));

    sim::ShardProfiler prof(2);
    RingConfig cfg = smallRing(2);
    cfg.profiler = &prof;
    RingResult profiled = workload::runRing(cfg);

    EXPECT_EQ(plain.simTicks, profiled.simTicks);
    EXPECT_EQ(plain.simEvents, profiled.simEvents);
    EXPECT_EQ(plain.digest, profiled.digest);
}

TEST(ProfileIntegration, BudgetCoversTheRun)
{
    sim::ShardProfiler prof(2);
    RingConfig cfg = smallRing(2);
    cfg.profiler = &prof;
    RingResult r = workload::runRing(cfg);
    ASSERT_GT(r.windows, 0u);

    sim::ShardProfiler::Slot t = prof.totals();
    EXPECT_GT(t.windows, 0u);
    EXPECT_GT(t.events, 0u);
    EXPECT_GT(t.drained, 0u) << "ring traffic crosses shards";
    EXPECT_GT(prof.wallNs(), 0u);
    // The chained-clock instrumentation tiles each worker's wall time;
    // thread spawn/join between the two runWindows calls is the only
    // gap. 0.80 here (vs the bench's 0.95 gate on a long run)
    // tolerates tiny windows on loaded or single-core CI hosts.
    EXPECT_GT(prof.accountedFraction(), 0.80);
    EXPECT_LE(prof.accountedFraction(), 1.05);

    std::ostringstream os;
    prof.writeTable(os);
    EXPECT_NE(os.str().find("shard time budget"), std::string::npos);
}

TEST(ProfileIntegration, TraceCarriesAllThreeDomains)
{
    span::registry().clear();
    sim::ShardProfiler prof(2);
    sim::TraceSink sink(2);
    prof.setTraceSink(&sink);
    sim::TraceSink::setGlobal(&sink);

    RingConfig cfg = smallRing(2);
    cfg.profiler = &prof;
    // A lossy link so the NI emits net-domain instants.
    cfg.faults.specified = true;
    cfg.faults.dropProb = 0.2;
    cfg.faults.seed = 1;
    RingResult r = workload::runRing(cfg);
    sim::TraceSink::setGlobal(nullptr);
    ASSERT_GT(r.retransmits, 0u) << "faults actually fired";

    sink.addSpanTracks();
    EXPECT_EQ(sink.droppedSlices(), 0u);

    std::ostringstream os;
    sink.write(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"execute\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos)
        << "no net-fault instants in the trace";
    EXPECT_NE(text.find(".net"), std::string::npos);
}

TEST(ProfileIntegration, FlightRecorderGraveyardSurvivesTheSystem)
{
    sim::FlightRecorder::clearAll();
    RingResult r = workload::runRing(smallRing(2));
    EXPECT_GT(r.messagesDelivered, 0u);

    // The per-node queues died with the System inside runRing; their
    // final events must still be dumpable for a post-mortem.
    std::ostringstream os;
    sim::FlightRecorder::dumpAll(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("flight recorder"), std::string::npos);
    EXPECT_NE(text.find("node0 (destroyed)"), std::string::npos);
    EXPECT_NE(text.find("node3 (destroyed)"), std::string::npos);
    sim::FlightRecorder::clearAll();
}
