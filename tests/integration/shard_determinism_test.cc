/**
 * @file
 * The sharded engine's central contract, end to end: the same ring
 * workload run on 1, 3 and 4 shards produces bit-identical simulated
 * time and counters — the canonical mailbox drain order makes the
 * shard layout invisible to the simulation. Sizes are kept small so
 * the suite stays fast under TSan, where these tests are the main
 * multi-threaded engine coverage.
 */

#include <gtest/gtest.h>

#include "workload/ring.hh"

using namespace shrimp;
using workload::RingConfig;
using workload::RingResult;

namespace
{

RingConfig
smallRing(unsigned shards)
{
    RingConfig cfg;
    cfg.nodes = 4;
    cfg.records = 8;
    cfg.recordBytes = 1024;
    cfg.shards = shards;
    return cfg;
}

void
expectIdentical(const RingResult &a, const RingResult &b,
                const char *what)
{
    EXPECT_EQ(a.simTicks, b.simTicks) << what;
    EXPECT_EQ(a.simEvents, b.simEvents) << what;
    EXPECT_EQ(a.bytesRouted, b.bytesRouted) << what;
    EXPECT_EQ(a.messagesDelivered, b.messagesDelivered) << what;
    EXPECT_EQ(a.bytesDelivered, b.bytesDelivered) << what;
    EXPECT_EQ(a.contextSwitches, b.contextSwitches) << what;
    EXPECT_EQ(a.digest, b.digest) << what;
}

} // namespace

TEST(ShardDeterminism, OneVsFourShards)
{
    RingResult r1 = workload::runRing(smallRing(1));
    RingResult r4 = workload::runRing(smallRing(4));
    expectIdentical(r1, r4, "shards=1 vs shards=4");
    EXPECT_GT(r1.messagesDelivered, 0u) << "workload actually ran";
    EXPECT_GT(r4.crossPosts, 0u) << "traffic crossed shards";
}

TEST(ShardDeterminism, UnevenShardCount)
{
    // 4 nodes on 3 shards: shard 0 executes two nodes, the drain
    // order must still be canonical.
    RingResult r1 = workload::runRing(smallRing(1));
    RingResult r3 = workload::runRing(smallRing(3));
    expectIdentical(r1, r3, "shards=1 vs shards=3");
}

TEST(ShardDeterminism, RerunIsBitIdentical)
{
    // The parallel run must also be stable against itself: thread
    // scheduling noise across two identical runs must not leak into
    // simulated time.
    RingResult a = workload::runRing(smallRing(4));
    RingResult b = workload::runRing(smallRing(4));
    expectIdentical(a, b, "rerun with shards=4");
}

TEST(ShardDeterminism, LargerRecordsStayIdentical)
{
    RingConfig cfg = smallRing(2);
    cfg.recordBytes = 4080;
    cfg.records = 4;
    RingConfig one = cfg;
    one.shards = 1;
    expectIdentical(workload::runRing(one), workload::runRing(cfg),
                    "4080-byte records, shards=1 vs shards=2");
}

TEST(ShardDeterminism, LargeMachineManyShards)
{
    // The 256-node shape the bench gates on, shrunk to one record per
    // node so the test stays affordable under TSan: 8 shards of 32
    // nodes each exercise the merged in-shard execution loop, direct
    // same-shard delivery, and the promise-based horizons at scale.
    RingConfig cfg;
    cfg.nodes = 256;
    cfg.records = 1;
    cfg.recordBytes = 1024;
    cfg.shards = 1;
    RingResult r1 = workload::runRing(cfg);
    cfg.shards = 8;
    RingResult r8 = workload::runRing(cfg);
    expectIdentical(r1, r8, "256 nodes, shards=1 vs shards=8");
    EXPECT_GT(r8.crossPosts, 0u);
}

TEST(ShardDeterminism, LegacyModeStillWorks)
{
    // shards=0 keeps the original single-queue path: same workload,
    // same delivery counts (timing may differ from the sharded runs).
    RingConfig cfg = smallRing(0);
    RingResult r = workload::runRing(cfg);
    // At least the payload records arrive (plus automatic-update
    // credit messages on top).
    EXPECT_GE(r.messagesDelivered,
              std::uint64_t(cfg.nodes) * cfg.records);
    EXPECT_GE(r.bytesDelivered,
              std::uint64_t(cfg.nodes) * cfg.records
                  * cfg.recordBytes);
    EXPECT_EQ(r.crossPosts, 0u);
    EXPECT_EQ(r.windows, 0u);
}
