/**
 * @file
 * End-to-end recovery tests for the fault-injection layer: a lossy,
 * corrupting, duplicating, reordering backplane must not change what
 * the receivers drain into memory — only when. Exactly-once delivery
 * is checked against a fault-free reference run via the payload data
 * digest, shard-count invariance is checked with the retry counters
 * folded in, and the invariant auditor must stay quiet while the NI
 * retransmission machinery is working hard.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "shrimp/fault.hh"
#include "workload/ring.hh"

using namespace shrimp;
using workload::RingConfig;
using workload::RingResult;
using workload::runRing;

namespace
{

/** A small ring with a nasty but recoverable backplane. */
RingConfig
faultyRing(unsigned shards)
{
    RingConfig cfg;
    cfg.nodes = 4;
    cfg.records = 8;
    cfg.recordBytes = 1024;
    cfg.shards = shards;
    EXPECT_TRUE(net::parseFaultSpec(
        "drop=0.05,corrupt=0.03,dup=0.03,delay=0.05,delay-us=30,seed=9",
        cfg.faults, nullptr));
    return cfg;
}

void
expectAllDelivered(const RingResult &r, const RingConfig &cfg)
{
    EXPECT_EQ(r.nodesDone, cfg.nodes);
    EXPECT_EQ(r.chunksUnacked, 0u);
    EXPECT_TRUE(r.lostFlows.empty());
    // Payload records plus the credit-return messages riding the same
    // channels; the exact-count comparison lives against the
    // fault-free reference run, not a formula.
    EXPECT_GE(r.messagesDelivered,
              std::uint64_t(cfg.nodes) * cfg.records);
}

} // namespace

TEST(FaultRecovery, ExactlyOnceDeliveryUnderFaults)
{
    RingConfig clean = faultyRing(1);
    clean.faults = net::FaultConfig{}; // fault-free reference
    RingResult ref = runRing(clean);
    expectAllDelivered(ref, clean);
    EXPECT_EQ(ref.retransmits, 0u);
    EXPECT_EQ(ref.timeouts, 0u);

    RingConfig cfg = faultyRing(1);
    RingResult r = runRing(cfg);
    expectAllDelivered(r, cfg);

    // The run must not be vacuous: the links really misbehaved and
    // the NI really recovered.
    EXPECT_GT(r.faults.dropped + r.faults.corrupted, 0u)
        << "fault spec injected nothing; the test proves nothing";
    EXPECT_GT(r.retransmits, 0u);

    // Exactly-once: every receiver drained exactly the bytes the
    // fault-free run drained, in the same per-flow order.
    EXPECT_EQ(r.dataDigest, ref.dataDigest);
    EXPECT_EQ(r.bytesDelivered, ref.bytesDelivered);
    EXPECT_EQ(r.messagesDelivered, ref.messagesDelivered);
}

TEST(FaultRecovery, ShardCountInvariantUnderFaults)
{
    RingResult seq = runRing(faultyRing(1));
    RingResult par = runRing(faultyRing(4));

    // Bit-identical simulation, including every recovery action.
    EXPECT_EQ(seq.digest, par.digest);
    EXPECT_EQ(seq.dataDigest, par.dataDigest);
    EXPECT_EQ(seq.simTicks, par.simTicks);
    EXPECT_EQ(seq.simEvents, par.simEvents);
    EXPECT_EQ(seq.bytesRouted, par.bytesRouted);
    EXPECT_EQ(seq.retransmits, par.retransmits);
    EXPECT_EQ(seq.fastRetransmits, par.fastRetransmits);
    EXPECT_EQ(seq.timeouts, par.timeouts);
    EXPECT_EQ(seq.acksSent, par.acksSent);
    EXPECT_EQ(seq.rxDupDropped, par.rxDupDropped);
    EXPECT_EQ(seq.rxCorruptDropped, par.rxCorruptDropped);
    EXPECT_EQ(seq.rxOooBuffered, par.rxOooBuffered);
    EXPECT_EQ(seq.ecnMarked, par.ecnMarked);
    EXPECT_EQ(seq.cwndCuts, par.cwndCuts);
    EXPECT_EQ(seq.faults.decisions, par.faults.decisions);
    EXPECT_EQ(seq.faults.dropped, par.faults.dropped);
    EXPECT_EQ(seq.faults.corrupted, par.faults.corrupted);
    EXPECT_EQ(seq.faults.duplicated, par.faults.duplicated);
    EXPECT_EQ(seq.faults.delayed, par.faults.delayed);
    EXPECT_GT(seq.retransmits, 0u) << "no recovery exercised";
}

TEST(FaultRecovery, DownWindowHealsAfterLinkReturns)
{
    RingConfig cfg = faultyRing(1);
    cfg.faults = net::FaultConfig{};
    // Kill node0 -> node1 for the first 2ms of the run, then let the
    // retransmit timers replay everything that fell in the hole.
    ASSERT_TRUE(net::parseFaultSpec("down=0-1@0-2000", cfg.faults,
                                    nullptr));
    RingResult r = runRing(cfg);
    expectAllDelivered(r, cfg);
    EXPECT_GT(r.faults.downDropped, 0u) << "window never hit traffic";
    EXPECT_GT(r.timeouts, 0u) << "nothing had to be replayed";
}

TEST(FaultRecovery, NoRetransmitLosesCompletions)
{
    // The model-checker mutation at library level: with the retry
    // timers disabled, the same lossy backplane must produce a
    // visible lost completion — senders stuck with unacked chunks.
    RingConfig cfg = faultyRing(1);
    cfg.faults.disableRetransmit = true;
    cfg.limit = Tick(5) * tickSec;
    RingResult r = runRing(cfg);
    EXPECT_LT(r.nodesDone, cfg.nodes);
    EXPECT_GT(r.chunksUnacked, 0u);
    EXPECT_FALSE(r.lostFlows.empty());
}

TEST(FaultRecovery, AuditorStaysCleanUnderFaults)
{
    // The auditor watches I1-I4 across every event; retransmission
    // must look like ordinary (if repetitive) NI traffic to it. The
    // monitor reports violations as "audit[...]" lines on stderr.
    ASSERT_EQ(setenv("SHRIMP_AUDIT", "every-event", 1), 0);
    testing::internal::CaptureStderr();
    RingConfig cfg = faultyRing(0); // legacy queue: per-event hooks
    RingResult r = runRing(cfg);
    std::string err = testing::internal::GetCapturedStderr();
    unsetenv("SHRIMP_AUDIT");

    expectAllDelivered(r, cfg);
    EXPECT_GT(r.retransmits, 0u);
    EXPECT_EQ(err.find("audit["), std::string::npos)
        << "invariant violations under faults:\n"
        << err;
}
