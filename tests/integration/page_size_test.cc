/**
 * @file
 * Page-size parameterization: the whole stack (proxy math, clamping,
 * NIPT indexing, paging) must work for any power-of-two page size —
 * nothing may assume 4 KB.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

class PageSizeSweep : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(PageSizeSweep, EndToEndMessage)
{
    const std::uint32_t pb = GetParam();
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.params.pageBytes = pb;
    cfg.node.memBytes = 64ull * pb;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);

    const std::uint32_t msg = pb + pb / 2; // forces a page split
    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
        Addr rxVa = 0;
    } shared;

    auto &recv = sys.node(1);
    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(2 * pb);
            shared.rxVa = buf;
            shared.rxPages =
                co_await sysExportRange(ctx, buf, 2 * pb);
            shared.exported = true;
            co_await pollWord(ctx, buf + msg - 8, 0x5EA1ull);
        });

    auto &send = sys.node(0);
    std::uint64_t transfers = 0;
    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            EXPECT_EQ(ctx.pageBytes(), pb);
            Addr buf = co_await ctx.sysAllocMemory(2 * pb);
            for (Addr off = 0; off + 8 <= msg; off += 8)
                co_await ctx.store(buf + off,
                                   off + 8 >= msg ? 0x5EA1ull : off);
            while (!shared.exported)
                co_await ctx.compute(500);
            Addr proxy = co_await sysMapRemoteRange(
                ctx, 0, *send.ni(), recv.id(), shared.rxPages);
            EXPECT_NE(proxy, 0u);
            transfers =
                co_await udmaTransfer(ctx, 0, proxy, buf, msg, true);
        });

    sys.runUntilAllDone(Tick(120) * tickSec);
    sys.run();
    EXPECT_EQ(transfers, 2u) << "one page + the half-page tail";
    EXPECT_EQ(recv.ni()->messagesDelivered(), 2u);

    // Spot-check content.
    auto *proc = recv.kernel().findProcess(1);
    std::uint64_t w = 0;
    recv.kernel().peekBytes(*proc, shared.rxVa + 16, &w, 8);
    EXPECT_EQ(w, 16u);
}

TEST_P(PageSizeSweep, HardwareClampsAtThisPageSize)
{
    const std::uint32_t pb = GetParam();
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.params.pageBytes = pb;
    cfg.node.memBytes = 64ull * pb;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 256;
    fb.fbHeight = 256;
    cfg.node.devices.push_back(fb);
    System sys(cfg);

    dma::Status st;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(2 * pb);
            co_await ctx.store(buf, 1);
            Addr win = co_await ctx.sysMapDeviceProxy(
                0, 0, 256 * 256 * 4 / pb, true);
            // Ask for far more than a page: the hardware truncates
            // at this machine's page boundary.
            st = co_await udmaStart(ctx, win, ctx.proxyAddr(buf, 0),
                                    0xFFFFF0 & ~3u);
            co_await udmaWait(ctx, ctx.proxyAddr(buf, 0));
        });
    sys.runUntilAllDone(Tick(60) * tickSec);
    EXPECT_FALSE(st.initiationFailed);
    EXPECT_EQ(st.remainingBytes, pb);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageSizeSweep,
                         ::testing::Values(1024u, 2048u, 4096u,
                                           8192u, 16384u),
                         [](const auto &info) {
                             return std::to_string(info.param) + "B";
                         });
