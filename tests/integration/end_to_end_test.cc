/**
 * @file
 * End-to-end integration tests: user processes driving real UDMA
 * transfers through the full stack (coroutine CPU -> MMU -> I/O bus ->
 * UDMA controller -> DMA engine -> device), including the two-node
 * SHRIMP deliberate-update message path.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
fbConfig()
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 64;
    fb.fbHeight = 64;
    cfg.node.devices.push_back(fb);
    return cfg;
}

SystemConfig
niConfig(unsigned nodes = 2)
{
    SystemConfig cfg;
    cfg.nodes = nodes;
    cfg.node.memBytes = 4 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    return cfg;
}

} // namespace

TEST(EndToEnd, ComputeOnlyProcessRunsAndExits)
{
    SystemConfig cfg = fbConfig();
    System sys(cfg);
    bool ran = false;
    sys.node(0).kernel().spawn("worker",
                               [&](os::UserContext &ctx) -> sim::ProcTask {
                                   co_await ctx.compute(1000);
                                   ran = true;
                               });
    sys.runUntilAllDone();
    EXPECT_TRUE(ran);
    // 1000 instructions at 60 MHz ~= 16.7 us plus dispatch cost.
    EXPECT_GT(sys.eq().now(), 16 * tickUs);
    EXPECT_LT(sys.eq().now(), 60 * tickUs);
}

TEST(EndToEnd, LoadStoreThroughMmu)
{
    SystemConfig cfg = fbConfig();
    System sys(cfg);
    std::uint64_t seen = 0;
    sys.node(0).kernel().spawn(
        "worker", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(8192);
            EXPECT_NE(buf, 0u);
            co_await ctx.store(buf + 16, 0xDEADBEEFCAFEull);
            seen = co_await ctx.load(buf + 16);
        });
    sys.runUntilAllDone();
    EXPECT_EQ(seen, 0xDEADBEEFCAFEull);
}

TEST(EndToEnd, UdmaBlitToFrameBuffer)
{
    SystemConfig cfg = fbConfig();
    System sys(cfg);
    auto &node = sys.node(0);
    const unsigned dev = 0;

    sys.node(0).kernel().spawn(
        "blitter", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            // Fill the source buffer with a pixel pattern via stores.
            for (unsigned i = 0; i < 64; ++i)
                co_await ctx.store(buf + i * 8, 0x11112222ull * (i + 1));
            // Map the first page of the frame buffer's proxy window.
            Addr fbva =
                co_await ctx.sysMapDeviceProxy(dev, 0, 1, true);
            EXPECT_NE(fbva, 0u);
            std::uint64_t n = co_await udmaTransfer(ctx, dev, fbva,
                                                    buf, 512);
            EXPECT_EQ(n, 1u);
        });
    sys.runUntilAllDone();

    // The frame buffer now holds the pattern.
    auto *fb = node.frameBuffer();
    ASSERT_NE(fb, nullptr);
    EXPECT_EQ(fb->pixel(0, 0), 0x11112222u * 1);
    // Pixel 2 (bytes 8..11) is the low half of the second store.
    EXPECT_EQ(fb->pixel(2, 0), std::uint32_t(0x11112222ull * 2));
}

TEST(EndToEnd, UdmaReadbackFromFrameBufferNeedsDirtyDest)
{
    SystemConfig cfg = fbConfig();
    System sys(cfg);
    auto &node = sys.node(0);
    const unsigned dev = 0;
    std::uint64_t first_word = 0;

    node.kernel().spawn(
        "reader", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            // Touch the destination so it exists; the proxy write
            // fault path (I3) will mark it dirty during initiation.
            co_await ctx.store(buf, 0);
            Addr fbva =
                co_await ctx.sysMapDeviceProxy(dev, 0, 1, true);
            EXPECT_NE(fbva, 0u);
            std::uint64_t n = co_await udmaTransferFromDevice(
                ctx, dev, buf, fbva, 256);
            EXPECT_EQ(n, 1u);
            first_word = co_await ctx.load(buf);
        });

    // Pre-paint the frame buffer.
    auto *fb = node.frameBuffer();
    std::vector<std::uint8_t> pix(256);
    for (unsigned i = 0; i < 256; ++i)
        pix[i] = std::uint8_t(i ^ 0x5a);
    fb->devicePush(0, pix.data(), 256);

    sys.runUntilAllDone();
    std::uint64_t expect;
    std::memcpy(&expect, pix.data(), 8);
    EXPECT_EQ(first_word, expect);
}

TEST(EndToEnd, ShrimpMessageTwoNodes)
{
    SystemConfig cfg = niConfig();
    System sys(cfg);
    const unsigned dev = 0;
    constexpr std::uint32_t msgBytes = 2048;

    // Out-of-band rendezvous between the two processes.
    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
        Addr rxVa = 0;
    } shared;

    auto &recvNode = sys.node(1);
    recvNode.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            shared.rxVa = buf;
            shared.rxPages = co_await sysExportRange(ctx, buf, 4096);
            shared.exported = true;
            // Poll the last word of the message for the sentinel the
            // sender places there.
            co_await pollWord(ctx, buf + msgBytes - 8,
                              0x00C0FFEE00C0FFEEull);
        });

    auto &sendNode = sys.node(0);
    sendNode.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(msgBytes);
            // Fill the payload (backdoor for speed, then patch the
            // sentinel with real stores so the page is dirty).
            std::vector<std::uint8_t> payload(msgBytes);
            for (std::uint32_t i = 0; i < msgBytes; ++i)
                payload[i] = std::uint8_t(i * 7);
            ctx.kernel().pokeBytes(ctx.process(), buf, payload.data(),
                                   msgBytes);
            co_await ctx.store(buf + msgBytes - 8,
                               0x00C0FFEE00C0FFEEull);
            // Wait for the receiver's export, then map it.
            while (!shared.exported)
                co_await ctx.compute(500);
            Addr proxy = co_await sysMapRemoteRange(
                ctx, dev, *sendNode.ni(), recvNode.id(),
                shared.rxPages);
            EXPECT_NE(proxy, 0u);
            std::uint64_t n =
                co_await udmaTransfer(ctx, dev, proxy, buf, msgBytes);
            EXPECT_EQ(n, 1u);
        });

    sys.runUntilAllDone(Tick(10) * tickSec);
    ASSERT_TRUE(recvNode.kernel().allProcessesDone());
    sys.run(); // drain trailing device events (delivery counters)

    // Verify the payload landed in the receiver's memory.
    auto *recvProc = recvNode.kernel().findProcess(1);
    ASSERT_NE(recvProc, nullptr);
    std::vector<std::uint8_t> got(msgBytes);
    recvNode.kernel().peekBytes(*recvProc, shared.rxVa, got.data(),
                                msgBytes);
    for (std::uint32_t i = 0; i < msgBytes - 8; ++i)
        ASSERT_EQ(got[i], std::uint8_t(i * 7)) << "at byte " << i;
    EXPECT_EQ(sendNode.ni()->messagesSent(), 1u);
    EXPECT_EQ(recvNode.ni()->messagesDelivered(), 1u);
}

TEST(EndToEnd, MultiPageShrimpMessage)
{
    SystemConfig cfg = niConfig();
    System sys(cfg);
    const unsigned dev = 0;
    constexpr std::uint32_t msgBytes = 3 * 4096 + 1024;

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
        Addr rxVa = 0;
    } shared;

    auto &recvNode = sys.node(1);
    recvNode.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4 * 4096);
            shared.rxVa = buf;
            shared.rxPages =
                co_await sysExportRange(ctx, buf, 4 * 4096);
            shared.exported = true;
            co_await pollWord(ctx, buf + msgBytes - 8, ~0ull);
        });

    auto &sendNode = sys.node(0);
    std::uint64_t transfers = 0;
    sendNode.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(msgBytes);
            std::vector<std::uint8_t> payload(msgBytes, 0xAB);
            ctx.kernel().pokeBytes(ctx.process(), buf, payload.data(),
                                   msgBytes);
            co_await ctx.store(buf + msgBytes - 8, ~0ull);
            while (!shared.exported)
                co_await ctx.compute(500);
            Addr proxy = co_await sysMapRemoteRange(
                ctx, dev, *sendNode.ni(), recvNode.id(),
                shared.rxPages);
            EXPECT_NE(proxy, 0u);
            transfers =
                co_await udmaTransfer(ctx, dev, proxy, buf, msgBytes);
        });

    sys.runUntilAllDone(Tick(10) * tickSec);
    sys.run(); // drain trailing device events
    // One hardware transfer per page piece: 3 full pages + the tail.
    EXPECT_EQ(transfers, 4u);
    EXPECT_EQ(sendNode.ni()->messagesSent(), 4u);
    EXPECT_EQ(recvNode.ni()->messagesDelivered(), 4u);
}
