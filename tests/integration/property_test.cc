/**
 * @file
 * Property-style integration tests (parameterized gtest sweeps):
 *
 *  - data integrity over the full UDMA + NI + interconnect stack for a
 *    grid of message sizes and page offsets (including the unaligned
 *    cases that force multi-piece sends);
 *  - randomized transfer sequences against a host-side reference
 *    model, across seeds;
 *  - several senders converging on one receiver.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "core/system.hh"
#include "core/udma_lib.hh"
#include "sim/random.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
niConfig(unsigned nodes)
{
    SystemConfig cfg;
    cfg.nodes = nodes;
    cfg.node.memBytes = 4 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    return cfg;
}

/** Send @p bytes starting at @p offset within the window; verify. */
void
runTransferCase(std::uint32_t bytes, std::uint32_t offset)
{
    SCOPED_TRACE("bytes=" + std::to_string(bytes)
                 + " offset=" + std::to_string(offset));
    System sys(niConfig(2));
    constexpr std::uint32_t pb = 4096;
    const std::uint32_t span_pages = (offset + bytes + pb - 1) / pb;

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
        Addr rxVa = 0;
    } shared;

    auto &recv = sys.node(1);
    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(span_pages * pb);
            shared.rxVa = buf;
            shared.rxPages = co_await sysExportRange(
                ctx, buf, span_pages * pb);
            shared.exported = true;
        });

    bool send_done = false;
    auto &send = sys.node(0);
    std::vector<std::uint8_t> payload(bytes);
    for (std::uint32_t i = 0; i < bytes; ++i)
        payload[i] = std::uint8_t(i * 31 + bytes);

    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(span_pages * pb);
            ctx.kernel().pokeBytes(ctx.process(), buf + offset,
                                   payload.data(), bytes);
            while (!shared.exported)
                co_await ctx.compute(500);
            Addr proxy = co_await sysMapRemoteRange(
                ctx, 0, *send.ni(), recv.id(), shared.rxPages);
            EXPECT_NE(proxy, 0u);
            co_await udmaTransfer(ctx, 0, proxy + offset, buf + offset,
                                  bytes, true);
            send_done = true;
        });

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run();
    ASSERT_TRUE(send_done);

    auto *proc = recv.kernel().findProcess(1);
    ASSERT_NE(proc, nullptr);
    std::vector<std::uint8_t> got(bytes);
    recv.kernel().peekBytes(*proc, shared.rxVa + offset, got.data(),
                            bytes);
    EXPECT_EQ(got, payload);
}

} // namespace

class TransferMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t>>
{};

TEST_P(TransferMatrix, DataIntegrity)
{
    runTransferCase(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndOffsets, TransferMatrix,
    ::testing::Combine(
        ::testing::Values(4u, 64u, 512u, 4096u, 5000u, 12288u),
        ::testing::Values(0u, 8u, 2048u, 4092u)),
    [](const auto &info) {
        return "b" + std::to_string(std::get<0>(info.param)) + "_off"
               + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------- randomized sequences

class RandomWorkload : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomWorkload, FrameBufferMatchesReferenceModel)
{
    // N random blits into a frame buffer, mirrored in a host-side
    // reference model; the device contents must match exactly.
    sim::Random rng(GetParam());
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 128;
    fb.fbHeight = 128; // 64 KB = 16 pages
    cfg.node.devices.push_back(fb);
    System sys(cfg);

    constexpr std::uint32_t fb_bytes = 128 * 128 * 4;
    std::vector<std::uint8_t> model(fb_bytes, 0);
    struct Op
    {
        std::uint32_t devOff;
        std::uint32_t len;
        std::uint8_t seed;
    };
    std::vector<Op> ops;
    for (int i = 0; i < 12; ++i) {
        std::uint32_t len = std::uint32_t(rng.between(1, 512)) * 4;
        std::uint32_t off = std::uint32_t(
            rng.below((fb_bytes - len) / 4) * 4);
        ops.push_back({off, len, std::uint8_t(rng.next())});
    }

    sys.node(0).kernel().spawn(
        "blitter", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(8192);
            Addr win = co_await ctx.sysMapDeviceProxy(
                0, 0, fb_bytes / 4096, true);
            for (const auto &op : ops) {
                // Build the payload in user memory (and the model).
                std::vector<std::uint8_t> data(op.len);
                for (std::uint32_t i = 0; i < op.len; ++i)
                    data[i] = std::uint8_t(op.seed + i * 7);
                ctx.kernel().pokeBytes(ctx.process(), buf,
                                       data.data(), op.len);
                std::memcpy(model.data() + op.devOff, data.data(),
                            op.len);
                co_await udmaTransfer(ctx, 0, win + op.devOff, buf,
                                      op.len, true);
            }
        });
    sys.runUntilAllDone(Tick(120) * tickSec);

    auto *fbdev = sys.node(0).frameBuffer();
    std::vector<std::uint8_t> got(fb_bytes);
    fbdev->devicePull(0, got.data(), fb_bytes);
    EXPECT_EQ(got, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkload,
                         ::testing::Values(1ull, 42ull, 0xBEEFull,
                                           777ull, 31415ull));

// ------------------------------------------------ convergent senders

TEST(MultiSender, TwoSendersOneReceiver)
{
    System sys(niConfig(3));
    constexpr std::uint32_t pb = 4096;

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
        Addr rxVa = 0;
    } shared;

    auto &recv = sys.node(2);
    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            // Two pages: one per sender.
            Addr buf = co_await ctx.sysAllocMemory(2 * pb);
            shared.rxVa = buf;
            shared.rxPages =
                co_await core::sysExportRange(ctx, buf, 2 * pb);
            shared.exported = true;
        });

    int done = 0;
    for (unsigned s = 0; s < 2; ++s) {
        auto *send = &sys.node(s);
        send->kernel().spawn(
            "sender" + std::to_string(s),
            [&, s, send](os::UserContext &ctx) -> sim::ProcTask {
                Addr buf = co_await ctx.sysAllocMemory(pb);
                std::vector<std::uint8_t> payload(pb,
                                                  std::uint8_t(s + 1));
                ctx.kernel().pokeBytes(ctx.process(), buf,
                                       payload.data(), pb);
                while (!shared.exported)
                    co_await ctx.compute(500);
                // Each sender maps only its own target page.
                std::vector<Addr> my_page(1, shared.rxPages[s]);
                Addr proxy = co_await sysMapRemoteRange(
                    ctx, 0, *send->ni(), recv.id(),
                    std::move(my_page));
                co_await udmaTransfer(ctx, 0, proxy, buf, pb, true);
                ++done;
            });
    }

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run();
    EXPECT_EQ(done, 2);
    auto *proc = recv.kernel().findProcess(1);
    std::vector<std::uint8_t> got(2 * pb);
    recv.kernel().peekBytes(*proc, shared.rxVa, got.data(), 2 * pb);
    for (std::uint32_t i = 0; i < pb; ++i) {
        ASSERT_EQ(got[i], 1) << "sender 0's page corrupted at " << i;
        ASSERT_EQ(got[pb + i], 2) << "sender 1's page corrupted at "
                                  << i;
    }
    EXPECT_EQ(recv.ni()->messagesDelivered(), 2u);
}
