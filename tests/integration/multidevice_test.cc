/**
 * @file
 * Multi-device nodes: NI + frame buffer + disk behind three UDMA
 * controllers on one node, driven concurrently by one process and by
 * several processes, all sharing the same EISA bus and the same
 * kernel invariants.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
triConfig()
{
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig ni;
    ni.kind = DeviceKind::ShrimpNi;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 128;
    fb.fbHeight = 128;
    DeviceConfig disk;
    disk.kind = DeviceKind::Disk;
    disk.diskBytes = 1 << 20;
    cfg.node.devices = {ni, fb, disk};
    return cfg;
}

} // namespace

TEST(MultiDevice, ThreeControllersServeOneProcess)
{
    System sys(triConfig());
    auto &node = sys.node(0);
    auto &peer = sys.node(1);

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;

    peer.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            shared.rxPages = co_await sysExportRange(ctx, buf, 4096);
            shared.exported = true;
            co_await pollWord(ctx, buf, 0xAAAA);
        });

    node.kernel().spawn(
        "worker", [&](os::UserContext &ctx) -> sim::ProcTask {
            const unsigned niDev = 0, fbDev = 1, diskDev = 2;
            Addr buf = co_await ctx.sysAllocMemory(3 * 4096);
            co_await ctx.store(buf, 0xAAAA);          // to the net
            co_await ctx.store(buf + 4096, 0xBBBB);   // to the fb
            co_await ctx.store(buf + 8192, 0xCCCC);   // to the disk

            while (!shared.exported)
                co_await ctx.compute(500);
            Addr niwin = co_await sysMapRemoteRange(
                ctx, niDev, *node.ni(), peer.id(), shared.rxPages);
            Addr fbwin =
                co_await ctx.sysMapDeviceProxy(fbDev, 0, 1, true);
            Addr dkwin =
                co_await ctx.sysMapDeviceProxy(diskDev, 0, 1, true);

            // Fire all three without waiting in between: each
            // controller has its own engine; they interleave on the
            // shared bus.
            co_await udmaTransfer(ctx, niDev, niwin, buf, 64, false);
            co_await udmaTransfer(ctx, fbDev, fbwin, buf + 4096, 64,
                                  false);
            co_await udmaTransfer(ctx, diskDev, dkwin, buf + 8192,
                                  64, false);
            // Now wait for each.
            co_await udmaWait(ctx, ctx.proxyAddr(buf, niDev));
            co_await udmaWait(ctx, ctx.proxyAddr(buf + 4096, fbDev));
            co_await udmaWait(ctx, ctx.proxyAddr(buf + 8192, diskDev));
        });

    sys.runUntilAllDone(Tick(120) * tickSec);
    sys.run();

    EXPECT_EQ(node.frameBuffer()->pixel(0, 0), 0xBBBBu);
    std::uint32_t disk_word = 0;
    node.disk()->readImage(0, &disk_word, 4);
    EXPECT_EQ(disk_word, 0xCCCCu);
    EXPECT_EQ(peer.ni()->messagesDelivered(), 1u);
    // Three independent controllers ran one transfer each.
    EXPECT_EQ(node.controller(0)->transfersStarted(), 1u);
    EXPECT_EQ(node.controller(1)->transfersStarted(), 1u);
    EXPECT_EQ(node.controller(2)->transfersStarted(), 1u);
}

TEST(MultiDevice, ProxySpacesOfDevicesAreDisjoint)
{
    System sys(triConfig());
    auto &node = sys.node(0);
    bool checked = false;
    node.kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1);
            // The same real address has a distinct proxy per device.
            Addr p0 = ctx.proxyAddr(buf, 0);
            Addr p1 = ctx.proxyAddr(buf, 1);
            Addr p2 = ctx.proxyAddr(buf, 2);
            EXPECT_NE(p0, p1);
            EXPECT_NE(p1, p2);
            // A store latched on device 1 is invisible to device 2.
            Addr fbwin =
                co_await ctx.sysMapDeviceProxy(1, 0, 1, true);
            co_await ctx.store(fbwin, 256);
            EXPECT_EQ(node.controller(1)->state(),
                      dma::UdmaController::State::DestLoaded);
            EXPECT_EQ(node.controller(2)->state(),
                      dma::UdmaController::State::Idle);
            // And device 2's LOAD cannot consume it.
            std::uint64_t w = co_await ctx.load(p2);
            EXPECT_TRUE(dma::Status::unpack(w).initiationFailed);
            EXPECT_EQ(node.controller(1)->transfersStarted(), 0u);
            // Clean up the latched store.
            co_await ctx.store(fbwin, -1);
            checked = true;
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(checked);
}

TEST(MultiDevice, ContextSwitchInvalsEveryController)
{
    System sys(triConfig());
    auto &node = sys.node(0);
    node.kernel().spawn(
        "a", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr fbwin =
                co_await ctx.sysMapDeviceProxy(1, 0, 1, true);
            Addr dkwin =
                co_await ctx.sysMapDeviceProxy(2, 0, 1, true);
            co_await ctx.store(fbwin, 64); // latch on fb
            co_await ctx.store(dkwin, 64); // latch on disk
            co_await ctx.yield();          // switch: both Inval'd
            EXPECT_EQ(node.controller(1)->state(),
                      dma::UdmaController::State::Idle);
            EXPECT_EQ(node.controller(2)->state(),
                      dma::UdmaController::State::Idle);
        });
    node.kernel().spawn(
        "b", [&](os::UserContext &ctx) -> sim::ProcTask {
            co_await ctx.compute(10);
        });
    sys.runUntilAllDone();
    EXPECT_GE(node.controller(1)->invalsApplied(), 1u);
    EXPECT_GE(node.controller(2)->invalsApplied(), 1u);
}
