/**
 * @file
 * Tests for the synthetic traffic generators.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/traffic.hh"

using namespace shrimp;
using namespace shrimp::workload;

TEST(Traffic, NeverSendsToSelf)
{
    for (Pattern p : {Pattern::NearestNeighbor, Pattern::UniformRandom,
                      Pattern::Hotspot, Pattern::Transpose,
                      Pattern::Bursty}) {
        TrafficConfig cfg;
        cfg.pattern = p;
        cfg.nodes = 5;
        for (NodeId self = 0; self < 5; ++self) {
            TrafficGenerator gen(cfg, self);
            for (int i = 0; i < 200; ++i) {
                NodeId d = gen.nextDestination();
                ASSERT_NE(d, self) << patternName(p);
                ASSERT_LT(d, 5u) << patternName(p);
            }
        }
    }
}

TEST(Traffic, DeterministicPerSeedAndNode)
{
    TrafficConfig cfg;
    cfg.pattern = Pattern::UniformRandom;
    cfg.nodes = 8;
    cfg.seed = 42;
    TrafficGenerator a(cfg, 3), b(cfg, 3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextDestination(), b.nextDestination());
    // Different nodes see different streams.
    TrafficGenerator c(cfg, 4);
    int same = 0;
    TrafficGenerator a2(cfg, 3);
    for (int i = 0; i < 100; ++i)
        same += a2.nextDestination() == c.nextDestination();
    EXPECT_LT(same, 50);
}

TEST(Traffic, NearestNeighborIsARing)
{
    TrafficConfig cfg;
    cfg.pattern = Pattern::NearestNeighbor;
    cfg.nodes = 4;
    for (NodeId self = 0; self < 4; ++self) {
        TrafficGenerator gen(cfg, self);
        EXPECT_EQ(gen.nextDestination(), (self + 1) % 4);
    }
}

TEST(Traffic, TransposeIsAPermutation)
{
    TrafficConfig cfg;
    cfg.pattern = Pattern::Transpose;
    cfg.nodes = 4;
    std::map<NodeId, int> hit;
    for (NodeId self = 0; self < 4; ++self) {
        TrafficGenerator gen(cfg, self);
        ++hit[gen.nextDestination()];
    }
    // Even size: a perfect permutation (every node receives once).
    for (NodeId d = 0; d < 4; ++d)
        EXPECT_EQ(hit[d], 1) << "dest " << d;
}

TEST(Traffic, TransposeOddMiddleRedirects)
{
    TrafficConfig cfg;
    cfg.pattern = Pattern::Transpose;
    cfg.nodes = 5;
    TrafficGenerator gen(cfg, 2); // the middle
    EXPECT_EQ(gen.nextDestination(), 3u);
}

TEST(Traffic, HotspotFractionRoughlyHonored)
{
    TrafficConfig cfg;
    cfg.pattern = Pattern::Hotspot;
    cfg.nodes = 8;
    cfg.hotspotNode = 2;
    cfg.hotspotFraction = 0.7;
    int hot = 0;
    constexpr int trials = 4000;
    TrafficGenerator gen(cfg, 5);
    for (int i = 0; i < trials; ++i)
        hot += gen.nextDestination() == 2;
    // 0.7 + (0.3 uniform over 7 others includes the hot node too).
    double expected = 0.7 + 0.3 / 7.0;
    EXPECT_NEAR(double(hot) / trials, expected, 0.04);
}

TEST(Traffic, HotspotNodeItselfSpraysUniformly)
{
    TrafficConfig cfg;
    cfg.pattern = Pattern::Hotspot;
    cfg.nodes = 4;
    cfg.hotspotNode = 0;
    TrafficGenerator gen(cfg, 0);
    std::map<NodeId, int> hit;
    for (int i = 0; i < 3000; ++i)
        ++hit[gen.nextDestination()];
    for (NodeId d = 1; d < 4; ++d)
        EXPECT_NEAR(hit[d] / 3000.0, 1.0 / 3, 0.05);
}

TEST(Traffic, BurstyDutyCycleRoughlyHonored)
{
    TrafficConfig cfg;
    cfg.pattern = Pattern::Bursty;
    cfg.nodes = 2;
    cfg.dutyCycle = 0.25;
    cfg.burstLength = 4;
    TrafficGenerator gen(cfg, 0);
    int on = 0;
    constexpr int slots = 8000;
    for (int i = 0; i < slots; ++i)
        on += gen.sendNow();
    EXPECT_NEAR(double(on) / slots, 0.25, 0.05);
}

TEST(Traffic, NonBurstyAlwaysSends)
{
    TrafficConfig cfg;
    cfg.pattern = Pattern::UniformRandom;
    cfg.nodes = 2;
    TrafficGenerator gen(cfg, 0);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(gen.sendNow());
}

TEST(Traffic, TooFewNodesPanics)
{
    TrafficConfig cfg;
    cfg.nodes = 1;
    EXPECT_THROW(TrafficGenerator(cfg, 0), PanicError);
}
