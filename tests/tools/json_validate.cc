/**
 * @file
 * Tiny CLI used by the CTest smoke targets: parse a JSON file (the
 * BENCH_*.json / --stats-json output) and verify that each required
 * dotted key is present.
 *
 *   json_validate <file> [dotted.key ...]
 *
 * Exit status: 0 = parsed and every key found; 1 = unreadable,
 * malformed, or a key missing; 2 = usage error.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "../support/mini_json.hh"

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: json_validate <file> [dotted.key ...]\n");
        return 2;
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "json_validate: cannot read %s\n",
                     argv[1]);
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    minijson::Value doc;
    std::string err;
    if (!minijson::parse(ss.str(), doc, &err)) {
        std::fprintf(stderr, "json_validate: %s: %s\n", argv[1],
                     err.c_str());
        return 1;
    }

    int missing = 0;
    for (int i = 2; i < argc; ++i) {
        if (!doc.path(argv[i])) {
            std::fprintf(stderr, "json_validate: %s: missing key %s\n",
                         argv[1], argv[i]);
            ++missing;
        }
    }
    if (missing)
        return 1;

    std::printf("json_validate: %s ok (%d keys checked)\n", argv[1],
                argc - 2);
    return 0;
}
