/**
 * @file
 * Unit tests for the swap area.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/backing_store.hh"

using namespace shrimp;
using namespace shrimp::mem;

namespace
{

std::vector<std::uint8_t>
pattern(std::uint8_t seed)
{
    std::vector<std::uint8_t> v(4096);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = std::uint8_t(seed + i);
    return v;
}

} // namespace

TEST(BackingStore, StoreLoadRoundTrip)
{
    BackingStore bs(4096);
    auto in = pattern(7);
    bs.store(1, 42, in.data());
    EXPECT_TRUE(bs.contains(1, 42));
    std::vector<std::uint8_t> out(4096);
    bs.load(1, 42, out.data());
    EXPECT_EQ(in, out);
}

TEST(BackingStore, MissingPageIsAbsent)
{
    BackingStore bs(4096);
    EXPECT_FALSE(bs.contains(1, 42));
    std::vector<std::uint8_t> out(4096);
    EXPECT_THROW(bs.load(1, 42, out.data()), PanicError);
}

TEST(BackingStore, KeysAreParPidAndVpn)
{
    BackingStore bs(4096);
    bs.store(1, 5, pattern(1).data());
    EXPECT_FALSE(bs.contains(2, 5));
    EXPECT_FALSE(bs.contains(1, 6));
    EXPECT_TRUE(bs.contains(1, 5));
}

TEST(BackingStore, OverwriteReplacesContent)
{
    BackingStore bs(4096);
    bs.store(1, 5, pattern(1).data());
    auto newer = pattern(99);
    bs.store(1, 5, newer.data());
    std::vector<std::uint8_t> out(4096);
    bs.load(1, 5, out.data());
    EXPECT_EQ(out, newer);
}

TEST(BackingStore, DropProcessRemovesOnlyThatPid)
{
    BackingStore bs(4096);
    bs.store(1, 5, pattern(1).data());
    bs.store(1, 6, pattern(2).data());
    bs.store(2, 5, pattern(3).data());
    bs.dropProcess(1);
    EXPECT_FALSE(bs.contains(1, 5));
    EXPECT_FALSE(bs.contains(1, 6));
    EXPECT_TRUE(bs.contains(2, 5));
}

TEST(BackingStore, CountsTraffic)
{
    BackingStore bs(4096);
    auto p = pattern(1);
    std::vector<std::uint8_t> out(4096);
    bs.store(1, 1, p.data());
    bs.store(1, 2, p.data());
    bs.load(1, 1, out.data());
    EXPECT_EQ(bs.pageWrites(), 2u);
    EXPECT_EQ(bs.pageReads(), 1u);
}
