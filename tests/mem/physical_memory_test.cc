/**
 * @file
 * Unit tests for the flat physical memory.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/physical_memory.hh"

using namespace shrimp;
using namespace shrimp::mem;

TEST(PhysicalMemory, SizeAndFrames)
{
    PhysicalMemory m(64 << 10, 4096);
    EXPECT_EQ(m.size(), 64u << 10);
    EXPECT_EQ(m.frames(), 16u);
    EXPECT_EQ(m.pageBytes(), 4096u);
}

TEST(PhysicalMemory, RejectsUnalignedSize)
{
    EXPECT_THROW(PhysicalMemory(4097, 4096), FatalError);
    EXPECT_THROW(PhysicalMemory(4096, 0), FatalError);
}

TEST(PhysicalMemory, ByteRoundTrip)
{
    PhysicalMemory m(8192, 4096);
    std::vector<std::uint8_t> in{1, 2, 3, 4, 5};
    m.writeBytes(100, in.data(), in.size());
    std::vector<std::uint8_t> out(5);
    m.readBytes(100, out.data(), out.size());
    EXPECT_EQ(in, out);
}

TEST(PhysicalMemory, TypedRoundTrip)
{
    PhysicalMemory m(8192, 4096);
    m.write<std::uint64_t>(8, 0xDEADBEEF12345678ull);
    EXPECT_EQ(m.read<std::uint64_t>(8), 0xDEADBEEF12345678ull);
    m.write<std::uint16_t>(3, 0xABCD);
    EXPECT_EQ(m.read<std::uint16_t>(3), 0xABCD);
}

TEST(PhysicalMemory, ZeroInitialized)
{
    PhysicalMemory m(4096, 4096);
    EXPECT_EQ(m.read<std::uint64_t>(0), 0u);
    EXPECT_EQ(m.read<std::uint64_t>(4088), 0u);
}

TEST(PhysicalMemory, ZeroFrame)
{
    PhysicalMemory m(8192, 4096);
    m.write<std::uint64_t>(4096, ~0ull);
    m.write<std::uint64_t>(8184, ~0ull);
    m.zeroFrame(1);
    EXPECT_EQ(m.read<std::uint64_t>(4096), 0u);
    EXPECT_EQ(m.read<std::uint64_t>(8184), 0u);
}

TEST(PhysicalMemory, FrameAddressing)
{
    PhysicalMemory m(64 << 10, 4096);
    EXPECT_EQ(m.frameAddr(3), 3u * 4096);
    EXPECT_EQ(m.frameOf(3 * 4096 + 17), 3u);
}

TEST(PhysicalMemory, OutOfRangePanics)
{
    PhysicalMemory m(4096, 4096);
    std::uint8_t b[8] = {};
    EXPECT_THROW(m.readBytes(4096, b, 1), PanicError);
    EXPECT_THROW(m.writeBytes(4090, b, 8), PanicError);
    EXPECT_THROW(m.readBytes(~0ull, b, 1), PanicError);
}

TEST(PhysicalMemory, EdgeOfMemoryIsAccessible)
{
    PhysicalMemory m(4096, 4096);
    m.write<std::uint8_t>(4095, 0x7f);
    EXPECT_EQ(m.read<std::uint8_t>(4095), 0x7f);
}
