/**
 * @file
 * A scriptable UdmaDevice for engine and controller unit tests:
 * records pushes/pulls, can throttle flow control, and can inject
 * validation errors.
 */

#ifndef SHRIMP_TESTS_DMA_MOCK_DEVICE_HH
#define SHRIMP_TESTS_DMA_MOCK_DEVICE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "dma/status.hh"
#include "dma/udma_device.hh"

namespace shrimp::test
{

class MockDevice : public dma::UdmaDevice
{
  public:
    // --- scripting knobs ---
    std::uint8_t nextError = dma::device_error::none;
    std::uint64_t boundaryBytes = 1 << 20; ///< from any offset
    std::uint32_t pushThrottle = ~0u; ///< max bytes per push window
    std::uint32_t pullThrottle = ~0u; ///< max bytes per pull window
    Tick extraStartLatency = 0;
    std::uint64_t extent = 1 << 20;

    // --- recorded state ---
    std::vector<std::uint8_t> received;
    std::vector<Addr> pushOffsets;
    std::uint64_t startCount = 0;
    std::uint64_t finishCount = 0;
    bool lastToDevice = true;
    std::uint32_t lastNbytes = 0;
    std::function<void()> wakeup;

    /** Data served on pulls (device as source). */
    std::vector<std::uint8_t> sourceData =
        std::vector<std::uint8_t>(1 << 16, 0x5A);

    std::string deviceName() const override { return "mock"; }

    std::uint8_t
    validateTransfer(bool to_device, Addr, std::uint32_t nbytes) override
    {
        lastToDevice = to_device;
        lastNbytes = nbytes;
        return nextError;
    }

    std::uint64_t
    deviceBoundary(Addr dev_offset) const override
    {
        (void)dev_offset;
        return boundaryBytes;
    }

    Tick
    startLatency(bool, Addr) const override
    {
        return extraStartLatency;
    }

    void
    transferStarting(bool to_device, Addr, std::uint32_t nbytes) override
    {
        ++startCount;
        lastToDevice = to_device;
        lastNbytes = nbytes;
    }

    void
    transferFinished(bool, Addr, std::uint32_t) override
    {
        ++finishCount;
    }

    std::uint32_t
    pushCapacity(Addr, std::uint32_t want) override
    {
        return std::min(want, pushThrottle);
    }

    void
    devicePush(Addr off, const std::uint8_t *data,
               std::uint32_t len) override
    {
        pushOffsets.push_back(off);
        received.insert(received.end(), data, data + len);
    }

    std::uint32_t
    pullAvailable(Addr, std::uint32_t want) override
    {
        return std::min(want, pullThrottle);
    }

    void
    devicePull(Addr off, std::uint8_t *out, std::uint32_t len) override
    {
        for (std::uint32_t i = 0; i < len; ++i)
            out[i] = sourceData[(off + i) % sourceData.size()];
    }

    void
    setEngineWakeup(std::function<void()> fn) override
    {
        wakeup = std::move(fn);
    }

    std::uint64_t proxyExtentBytes() const override { return extent; }

    /** Open the throttles and poke the engine. */
    void
    unthrottle()
    {
        pushThrottle = ~0u;
        pullThrottle = ~0u;
        if (wakeup)
            wakeup();
    }
};

} // namespace shrimp::test

#endif // SHRIMP_TESTS_DMA_MOCK_DEVICE_HH
