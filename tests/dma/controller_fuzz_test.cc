/**
 * @file
 * Property test: the UDMA controller against an independent reference
 * model of the Figure 5 protocol.
 *
 * Thousands of random STOREs (positive/negative counts, memory/device
 * proxy addresses), LOADs, Invals and event-queue steps are applied to
 * both the hardware model and a tiny abstract state machine; after
 * every operation the architectural state and the status-word flags
 * must agree. Runs across several seeds and both basic and queueing
 * configurations (TEST_P).
 */

#include <gtest/gtest.h>

#include <deque>

#include "dma/udma_controller.hh"
#include "mock_device.hh"
#include "sim/random.hh"

using namespace shrimp;
using namespace shrimp::dma;

namespace
{

/** The abstract Figure 5 + Section 7 protocol. */
struct ReferenceModel
{
    explicit ReferenceModel(std::uint32_t queue_depth)
        : queueDepth(queue_depth)
    {}

    std::uint32_t queueDepth;
    bool engineBusy = false;
    std::size_t queued = 0;
    bool pendingValid = false;
    bool pendingIsDevice = false;
    std::uint32_t pendingCount = 0;

    enum class State
    {
        Idle,
        DestLoaded,
        Transferring,
    };

    State
    state() const
    {
        if (engineBusy || queued > 0)
            return State::Transferring;
        return pendingValid ? State::DestLoaded : State::Idle;
    }

    void
    store(bool to_device_region, std::int64_t value)
    {
        if (value <= 0) {
            pendingValid = false; // Inval
            return;
        }
        if (queueDepth == 0 && engineBusy)
            return; // absorbed
        pendingValid = true;
        pendingIsDevice = to_device_region;
        pendingCount = std::uint32_t(
            std::min<std::int64_t>(value, 0xffffff));
    }

    /** Returns the expected status of a LOAD from @p dev_region. */
    Status
    load(bool dev_region, std::uint32_t clamped)
    {
        Status st;
        st.initiationFailed = true;
        if (pendingValid && (queueDepth > 0 || !engineBusy)) {
            if (dev_region == pendingIsDevice) {
                // BadLoad.
                pendingValid = false;
                st.wrongSpace = true;
            } else if (!engineBusy) {
                pendingValid = false;
                engineBusy = true;
                st.initiationFailed = false;
                st.remainingBytes = clamped;
            } else if (queued < queueDepth) {
                pendingValid = false;
                ++queued;
                st.initiationFailed = false;
                st.remainingBytes = clamped;
            } else {
                st.deviceError = device_error::queueFull;
            }
        }
        st.transferring = state() == State::Transferring;
        st.invalid = state() == State::Idle;
        return st;
    }

    /** One engine completion. */
    void
    complete()
    {
        if (!engineBusy)
            return;
        if (queued > 0)
            --queued;
        else
            engineBusy = false;
    }
};

struct FuzzCase
{
    std::uint64_t seed;
    std::uint32_t queueDepth;
};

class ControllerFuzz : public ::testing::TestWithParam<FuzzCase>
{};

} // namespace

TEST_P(ControllerFuzz, AgreesWithReferenceModel)
{
    const auto param = GetParam();
    sim::Random rng(param.seed);

    sim::EventQueue eq;
    sim::MachineParams params;
    vm::AddressLayout layout(1 << 20, 4096, 1);
    mem::PhysicalMemory memory(1 << 20, 4096);
    bus::IoBus bus(eq, params);
    test::MockDevice dev;
    UdmaController ctrl(eq, params, layout, memory, bus, dev, 0,
                        param.queueDepth);
    ReferenceModel model(param.queueDepth);

    // Completions: the reference model completes one transfer each
    // time the hardware engine finishes one.
    std::uint64_t finishes_seen = 0;

    auto sync_completions = [&] {
        while (finishes_seen < dev.finishCount) {
            model.complete();
            ++finishes_seen;
        }
    };

    auto expect_same_state = [&](const char *what, int step) {
        sync_completions();
        auto hw = ctrl.state();
        auto md = model.state();
        int hwn = int(hw), mdn = int(md);
        ASSERT_EQ(hwn, mdn) << "state divergence after " << what
                            << " at step " << step << " (seed "
                            << param.seed << ")";
    };

    for (int step = 0; step < 4000; ++step) {
        std::uint64_t dice = rng.below(100);
        if (dice < 35) {
            // STORE: random region, mostly positive counts, aligned.
            bool dev_region = rng.chance(0.5);
            std::int64_t count =
                rng.chance(0.15)
                    ? -std::int64_t(rng.below(1000)) - 1
                    : std::int64_t(rng.between(1, 3000)) * 4;
            Addr a;
            if (dev_region) {
                a = layout.devProxyBase(0)
                    + rng.below(64) * 4096 + rng.below(1024) * 4;
            } else {
                a = layout.proxy(rng.below(128) * 4096
                                     + rng.below(1024) * 4,
                                 0);
            }
            ctrl.proxyStore(layout.decode(a), a, count);
            model.store(dev_region, count);
            expect_same_state("store", step);
        } else if (dice < 70) {
            // LOAD: random region.
            bool dev_region = rng.chance(0.5);
            Addr a;
            if (dev_region) {
                a = layout.devProxyBase(0)
                    + rng.below(64) * 4096 + rng.below(1024) * 4;
            } else {
                a = layout.proxy(rng.below(128) * 4096
                                     + rng.below(1024) * 4,
                                 0);
            }
            sync_completions();
            Status hw = Status::unpack(
                ctrl.proxyLoad(layout.decode(a), a));
            Status md = model.load(dev_region, hw.remainingBytes);
            ASSERT_EQ(hw.initiationFailed, md.initiationFailed)
                << "step " << step << " seed " << param.seed;
            ASSERT_EQ(hw.wrongSpace, md.wrongSpace)
                << "step " << step << " seed " << param.seed;
            ASSERT_EQ(hw.deviceError, md.deviceError)
                << "step " << step << " seed " << param.seed;
            expect_same_state("load", step);
        } else if (dice < 78) {
            // Kernel Inval (context switch).
            ctrl.inval();
            model.store(false, -1);
            expect_same_state("inval", step);
        } else {
            // Let simulated time pass.
            for (std::uint64_t n = rng.below(25); n > 0; --n) {
                if (!eq.step())
                    break;
            }
            expect_same_state("time", step);
        }
    }
    eq.run();
    sync_completions();
    // Drain: both must agree the machine is quiescent (Idle or a
    // lone latched destination).
    EXPECT_EQ(int(ctrl.state()), int(model.state()));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDepths, ControllerFuzz,
    ::testing::Values(FuzzCase{1, 0}, FuzzCase{2, 0}, FuzzCase{3, 0},
                      FuzzCase{11, 1}, FuzzCase{12, 2},
                      FuzzCase{13, 4}, FuzzCase{14, 8},
                      FuzzCase{99, 16}),
    [](const auto &info) {
        return "seed" + std::to_string(info.param.seed) + "_q"
               + std::to_string(info.param.queueDepth);
    });
