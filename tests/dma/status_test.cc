/**
 * @file
 * Unit tests for the UDMA status word (paper Section 5).
 */

#include <gtest/gtest.h>

#include "dma/status.hh"

using namespace shrimp;
using namespace shrimp::dma;

TEST(Status, DefaultIsFailedInitiation)
{
    Status st;
    auto w = st.pack();
    EXPECT_TRUE(w & status_bits::initiation);
    EXPECT_FALSE(loadStartedTransfer(w));
}

TEST(Status, SuccessfulInitiationHasZeroBit)
{
    Status st;
    st.initiationFailed = false;
    EXPECT_TRUE(loadStartedTransfer(st.pack()))
        << "INITIATION FLAG is zero on success (Section 5)";
}

TEST(Status, PackUnpackRoundTripAllFlags)
{
    Status st;
    st.initiationFailed = false;
    st.transferring = true;
    st.invalid = false;
    st.match = true;
    st.wrongSpace = true;
    st.deviceError = device_error::alignment | device_error::range;
    st.remainingBytes = 4096;
    Status back = Status::unpack(st.pack());
    EXPECT_EQ(back.initiationFailed, st.initiationFailed);
    EXPECT_EQ(back.transferring, st.transferring);
    EXPECT_EQ(back.invalid, st.invalid);
    EXPECT_EQ(back.match, st.match);
    EXPECT_EQ(back.wrongSpace, st.wrongSpace);
    EXPECT_EQ(back.deviceError, st.deviceError);
    EXPECT_EQ(back.remainingBytes, st.remainingBytes);
}

TEST(Status, MatchDrivesInFlightHelper)
{
    Status st;
    st.match = true;
    EXPECT_TRUE(loadSaysInFlight(st.pack()));
    st.match = false;
    EXPECT_FALSE(loadSaysInFlight(st.pack()));
}

TEST(Status, RemainingBytesWidth)
{
    Status st;
    st.remainingBytes = 0xFFFFFF; // 24-bit field
    EXPECT_EQ(Status::unpack(st.pack()).remainingBytes, 0xFFFFFFu);
}

TEST(Status, FieldsDoNotAlias)
{
    // Each flag must round-trip independently.
    for (int bit = 0; bit < 5; ++bit) {
        Status st;
        st.initiationFailed = bit == 0;
        st.transferring = bit == 1;
        st.invalid = bit == 2;
        st.match = bit == 3;
        st.wrongSpace = bit == 4;
        Status back = Status::unpack(st.pack());
        EXPECT_EQ(back.initiationFailed, bit == 0);
        EXPECT_EQ(back.transferring, bit == 1);
        EXPECT_EQ(back.invalid, bit == 2);
        EXPECT_EQ(back.match, bit == 3);
        EXPECT_EQ(back.wrongSpace, bit == 4);
    }
}

class StatusRemainingSweep
    : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(StatusRemainingSweep, RoundTrips)
{
    Status st;
    st.remainingBytes = GetParam();
    st.deviceError = 0xAB;
    Status back = Status::unpack(st.pack());
    EXPECT_EQ(back.remainingBytes, GetParam());
    EXPECT_EQ(back.deviceError, 0xAB);
}

INSTANTIATE_TEST_SUITE_P(Widths, StatusRemainingSweep,
                         ::testing::Values(0u, 1u, 4u, 511u, 4096u,
                                           65536u, 0xFFFFFFu));
