/**
 * @file
 * Tests for the Section 5 extension: "a mechanism for software to
 * terminate a transfer and force a transition from the Transferring
 * state to the Idle state ... useful for dealing with memory system
 * errors that the DMA hardware cannot handle transparently."
 */

#include <gtest/gtest.h>

#include "dma/udma_controller.hh"
#include "mock_device.hh"

using namespace shrimp;
using namespace shrimp::dma;

namespace
{

struct AbortFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::MachineParams params;
    vm::AddressLayout layout{1 << 20, 4096, 1};
    mem::PhysicalMemory memory{1 << 20, 4096};
    bus::IoBus bus{eq, params};
    test::MockDevice dev;
    UdmaController ctrl{eq, params, layout, memory, bus, dev, 0, 2};

    void
    initiate(Addr mem_real, Addr dev_off, std::uint32_t count)
    {
        Addr dst = layout.devProxyBase(0) + dev_off;
        ctrl.proxyStore(layout.decode(dst), dst,
                        std::int64_t(count));
        Addr src = layout.proxy(mem_real, 0);
        (void)ctrl.proxyLoad(layout.decode(src), src);
    }
};

using State = UdmaController::State;

} // namespace

TEST_F(AbortFixture, AbortIdleReturnsFalse)
{
    EXPECT_FALSE(ctrl.abortTransfer());
    EXPECT_EQ(ctrl.transfersAborted(), 0u);
}

TEST_F(AbortFixture, AbortForcesTransferringToIdle)
{
    initiate(0, 0, 4096);
    EXPECT_EQ(ctrl.state(), State::Transferring);
    // Let a few chunks move, then pull the plug.
    for (int i = 0; i < 4; ++i)
        (void)eq.step();
    EXPECT_TRUE(ctrl.abortTransfer());
    EXPECT_EQ(ctrl.state(), State::Idle);
    EXPECT_EQ(ctrl.transfersAborted(), 1u);
    // The queue drains cleanly: no further chunks arrive.
    auto moved = dev.received.size();
    eq.run();
    EXPECT_EQ(dev.received.size(), moved)
        << "in-flight chunk events must be cancelled";
    EXPECT_LT(moved, 4096u);
    EXPECT_FALSE(ctrl.pageBusy(0)) << "I4 reference released";
}

TEST_F(AbortFixture, NewTransferAfterAbortWorks)
{
    initiate(0, 0, 4096);
    (void)eq.step();
    ASSERT_TRUE(ctrl.abortTransfer());
    // A fresh initiation right away must run to completion.
    for (std::uint32_t i = 0; i < 64; ++i) {
        std::uint8_t b = std::uint8_t(i + 1);
        memory.writeBytes(0x2000 + i, &b, 1);
    }
    dev.received.clear();
    initiate(0x2000, 512, 64);
    eq.run();
    EXPECT_EQ(ctrl.state(), State::Idle);
    ASSERT_EQ(dev.received.size(), 64u);
    EXPECT_EQ(dev.received[0], 1);
    EXPECT_EQ(ctrl.transfersStarted(), 2u);
}

TEST_F(AbortFixture, QueuedRequestsSurviveAnAbort)
{
    initiate(0, 0, 4096);          // in flight
    initiate(0x1000, 4096, 4096);  // queued
    EXPECT_EQ(ctrl.queuedRequests(), 1u);
    ASSERT_TRUE(ctrl.abortTransfer());
    // The queued request was promoted immediately.
    EXPECT_EQ(ctrl.state(), State::Transferring);
    EXPECT_EQ(ctrl.queuedRequests(), 0u);
    eq.run();
    EXPECT_EQ(ctrl.state(), State::Idle);
    EXPECT_EQ(ctrl.transfersStarted(), 2u);
    // The second transfer's 4096 bytes all arrived.
    EXPECT_GE(dev.received.size(), 4096u);
}

TEST_F(AbortFixture, StatusAfterAbortReportsIdle)
{
    initiate(0, 0, 4096);
    (void)eq.step();
    ctrl.abortTransfer();
    Addr src = layout.proxy(0, 0);
    auto st = Status::unpack(ctrl.proxyLoad(layout.decode(src), src));
    EXPECT_TRUE(st.invalid);
    EXPECT_FALSE(st.match)
        << "the polling recipe correctly reads 'no longer in flight'";
}
