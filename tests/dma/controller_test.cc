/**
 * @file
 * Unit tests for the UDMA controller: every transition of the Figure 5
 * state machine, the Section 5 status word semantics, optimistic page
 * clamping (Section 8), and the Section 7 queueing extension.
 */

#include <gtest/gtest.h>

#include "dma/udma_controller.hh"
#include "mock_device.hh"

using namespace shrimp;
using namespace shrimp::dma;

namespace
{

struct ControllerFixture : ::testing::Test
{
    static constexpr unsigned devIdx = 0;
    sim::EventQueue eq;
    sim::MachineParams params;
    vm::AddressLayout layout{1 << 20, 4096, 2};
    mem::PhysicalMemory memory{1 << 20, 4096};
    bus::IoBus bus{eq, params};
    test::MockDevice dev;
    UdmaController ctrl{eq,  params, layout, memory,
                        bus, dev,    devIdx, 0};

    Addr
    memProxy(Addr real) const
    {
        return layout.proxy(real, devIdx);
    }

    Addr
    devProxy(Addr off) const
    {
        return layout.devProxyBase(devIdx) + off;
    }

    /** Issue a STORE bus cycle. */
    void
    store(Addr paddr, std::int64_t value)
    {
        ctrl.proxyStore(layout.decode(paddr), paddr, value);
    }

    /** Issue a LOAD bus cycle; returns the decoded status. */
    Status
    load(Addr paddr)
    {
        return Status::unpack(ctrl.proxyLoad(layout.decode(paddr),
                                             paddr));
    }

    /** Fill real memory with a recognizable pattern. */
    void
    fill(Addr base, std::uint32_t len)
    {
        for (std::uint32_t i = 0; i < len; ++i) {
            auto b = std::uint8_t(i + 3);
            memory.writeBytes(base + i, &b, 1);
        }
    }
};

using State = UdmaController::State;

} // namespace

// ---------------------------------------------------------------- Idle

TEST_F(ControllerFixture, StartsIdle)
{
    EXPECT_EQ(ctrl.state(), State::Idle);
}

TEST_F(ControllerFixture, LoadWhileIdleIsStatusOnly)
{
    Status st = load(memProxy(0x1000));
    EXPECT_TRUE(st.initiationFailed);
    EXPECT_TRUE(st.invalid) << "INVALID FLAG: one if in the Idle state";
    EXPECT_FALSE(st.transferring);
    EXPECT_FALSE(st.match);
    EXPECT_EQ(st.remainingBytes, 0u);
    EXPECT_EQ(ctrl.state(), State::Idle);
}

TEST_F(ControllerFixture, InvalWhileIdleIsNoOp)
{
    store(memProxy(0x1000), -1);
    EXPECT_EQ(ctrl.state(), State::Idle);
    EXPECT_EQ(ctrl.invalsApplied(), 0u)
        << "nothing pending, nothing invalidated";
}

// ---------------------------------------------------- Store/DestLoaded

TEST_F(ControllerFixture, StoreLatchesDestination)
{
    store(devProxy(64), 256);
    EXPECT_EQ(ctrl.state(), State::DestLoaded);
    Addr page;
    EXPECT_FALSE(ctrl.destLoadedPage(page))
        << "device destinations have no memory page";
}

TEST_F(ControllerFixture, StoreToMemProxyLatchesRealPage)
{
    store(memProxy(0x3010), 256);
    EXPECT_EQ(ctrl.state(), State::DestLoaded);
    Addr page = 0;
    ASSERT_TRUE(ctrl.destLoadedPage(page));
    EXPECT_EQ(page, 0x3000u);
}

TEST_F(ControllerFixture, StatusInDestLoadedShowsCount)
{
    store(devProxy(0), 300);
    // A status LOAD in DestLoaded *initiates*, so peek at REMAINING
    // via a BadLoad-free route: the load below initiates and reports
    // the clamped count.
    Status st = load(memProxy(0x1000));
    EXPECT_FALSE(st.initiationFailed);
    EXPECT_EQ(st.remainingBytes, 300u);
}

TEST_F(ControllerFixture, SecondStoreOverwritesDestAndCount)
{
    store(devProxy(0), 100);
    store(devProxy(512), 200);
    EXPECT_EQ(ctrl.state(), State::DestLoaded);
    Status st = load(memProxy(0x1000));
    EXPECT_FALSE(st.initiationFailed);
    EXPECT_EQ(st.remainingBytes, 200u) << "latest STORE wins";
    EXPECT_EQ(dev.pushOffsets.empty(), true);
    eq.run();
    EXPECT_EQ(dev.pushOffsets.front(), 512u);
}

TEST_F(ControllerFixture, InvalClearsDestLoaded)
{
    store(devProxy(0), 100);
    store(memProxy(0x2000), -5);
    EXPECT_EQ(ctrl.state(), State::Idle);
    EXPECT_EQ(ctrl.invalsApplied(), 1u);
    // A later LOAD must NOT start anything (I1's point).
    Status st = load(memProxy(0x1000));
    EXPECT_TRUE(st.initiationFailed);
    EXPECT_TRUE(st.invalid);
}

TEST_F(ControllerFixture, ZeroCountIsInval)
{
    store(devProxy(0), 100);
    store(devProxy(0), 0);
    EXPECT_EQ(ctrl.state(), State::Idle)
        << "a non-positive nbytes is an Inval event";
}

TEST_F(ControllerFixture, ExplicitInvalMethodMatchesBusInval)
{
    store(devProxy(0), 100);
    ctrl.inval();
    EXPECT_EQ(ctrl.state(), State::Idle);
}

// ------------------------------------------------------------- BadLoad

TEST_F(ControllerFixture, BadLoadDeviceToDevice)
{
    store(devProxy(0), 100);
    Status st = load(devProxy(4096));
    EXPECT_TRUE(st.initiationFailed);
    EXPECT_TRUE(st.wrongSpace)
        << "WRONG-SPACE FLAG set on a BadLoad (Section 5)";
    EXPECT_EQ(ctrl.state(), State::Idle)
        << "BadLoad: DestLoaded -> Idle";
    EXPECT_EQ(ctrl.badLoads(), 1u);
}

TEST_F(ControllerFixture, BadLoadMemoryToMemory)
{
    store(memProxy(0x1000), 100);
    Status st = load(memProxy(0x2000));
    EXPECT_TRUE(st.wrongSpace);
    EXPECT_EQ(ctrl.state(), State::Idle);
}

// ------------------------------------------------- successful initiation

TEST_F(ControllerFixture, MemoryToDeviceInitiation)
{
    fill(0x3000, 512);
    store(devProxy(128), 512);
    Status st = load(memProxy(0x3000));
    EXPECT_FALSE(st.initiationFailed)
        << "INITIATION FLAG zero iff the access started a transfer";
    EXPECT_TRUE(st.transferring);
    EXPECT_FALSE(st.invalid);
    EXPECT_TRUE(st.match) << "referenced address is the base address";
    EXPECT_EQ(st.remainingBytes, 512u);
    EXPECT_EQ(ctrl.state(), State::Transferring);
    eq.run();
    EXPECT_EQ(ctrl.state(), State::Idle) << "TransferDone -> Idle";
    ASSERT_EQ(dev.received.size(), 512u);
    EXPECT_EQ(dev.received[0], 3);
    EXPECT_TRUE(dev.lastToDevice);
}

TEST_F(ControllerFixture, DeviceToMemoryInitiation)
{
    store(memProxy(0x4000), 256);
    Status st = load(devProxy(64));
    EXPECT_FALSE(st.initiationFailed);
    eq.run();
    EXPECT_EQ(memory.read<std::uint8_t>(0x4000),
              dev.sourceData[64 % dev.sourceData.size()]);
    EXPECT_FALSE(dev.lastToDevice);
}

TEST_F(ControllerFixture, PollingDuringTransfer)
{
    fill(0, 4096);
    store(devProxy(0), 4096);
    Addr src = memProxy(0);
    Status st = load(src);
    ASSERT_FALSE(st.initiationFailed);
    // Poll with the same LOAD: match stays set, remaining shrinks.
    bool saw_partial = false;
    while (ctrl.state() == State::Transferring) {
        Status poll = load(src);
        EXPECT_TRUE(poll.initiationFailed);
        EXPECT_TRUE(poll.transferring);
        EXPECT_TRUE(poll.match);
        if (poll.remainingBytes > 0 && poll.remainingBytes < 4096)
            saw_partial = true;
        if (!eq.step())
            break;
    }
    EXPECT_TRUE(saw_partial);
    Status done = load(src);
    EXPECT_FALSE(done.match) << "match clears at completion";
    EXPECT_TRUE(done.invalid);
}

TEST_F(ControllerFixture, PollWithDifferentAddressHasNoMatch)
{
    fill(0, 512);
    store(devProxy(0), 512);
    (void)load(memProxy(0));
    Status st = load(memProxy(0x9000));
    EXPECT_TRUE(st.transferring);
    EXPECT_FALSE(st.match)
        << "MATCH only for the base address of the transfer";
    eq.run();
}

TEST_F(ControllerFixture, MatchOnDestinationAddressToo)
{
    fill(0, 512);
    store(devProxy(256), 512);
    (void)load(memProxy(0));
    Status st = load(devProxy(256));
    EXPECT_TRUE(st.match);
    eq.run();
}

TEST_F(ControllerFixture, StoreDuringTransferIsAbsorbed)
{
    fill(0, 4096);
    store(devProxy(0), 4096);
    (void)load(memProxy(0));
    // Basic hardware: a Store in Transferring neither transitions nor
    // latches (the user retries the whole sequence).
    store(devProxy(512), 100);
    EXPECT_EQ(ctrl.state(), State::Transferring);
    eq.run();
    EXPECT_EQ(ctrl.state(), State::Idle)
        << "absorbed store must not leave a pending destination";
    EXPECT_EQ(ctrl.transfersStarted(), 1u);
}

TEST_F(ControllerFixture, InvalDoesNotKillRunningTransfer)
{
    fill(0, 2048);
    store(devProxy(0), 2048);
    (void)load(memProxy(0));
    ctrl.inval();
    EXPECT_EQ(ctrl.state(), State::Transferring)
        << "'Once started, a UDMA transfer continues'";
    eq.run();
    EXPECT_EQ(dev.received.size(), 2048u);
}

// ------------------------------------------------------------ clamping

TEST_F(ControllerFixture, ClampsAtSourcePageBoundary)
{
    fill(0x3F00, 256);
    store(devProxy(0), 4096);
    Status st = load(memProxy(0x3F00)); // 256 bytes to page end
    EXPECT_FALSE(st.initiationFailed);
    EXPECT_EQ(st.remainingBytes, 256u)
        << "optimistic hardware truncation at the page boundary";
    eq.run();
    EXPECT_EQ(dev.received.size(), 256u);
}

TEST_F(ControllerFixture, ClampsAtDestinationPageBoundary)
{
    store(memProxy(0x3E00), 4096); // dest: 512 bytes to page end
    Status st = load(devProxy(0));
    EXPECT_EQ(st.remainingBytes, 512u);
    eq.run();
}

TEST_F(ControllerFixture, ClampsAtDeviceBoundary)
{
    dev.boundaryBytes = 128;
    fill(0x3000, 4096);
    store(devProxy(0), 4096);
    Status st = load(memProxy(0x3000));
    EXPECT_EQ(st.remainingBytes, 128u);
    eq.run();
}

TEST_F(ControllerFixture, CountCappedByRegisterWidth)
{
    store(devProxy(0), std::int64_t(1) << 40);
    Status st = load(memProxy(0));
    // Page clamp dominates anyway, but the COUNT register is 24 bits.
    EXPECT_LE(st.remainingBytes, 0xFFFFFFu);
    eq.run();
}

// ------------------------------------------------------ device errors

TEST_F(ControllerFixture, DeviceValidationErrorAborts)
{
    dev.nextError = device_error::alignment;
    store(devProxy(2), 100);
    Status st = load(memProxy(0x1000));
    EXPECT_TRUE(st.initiationFailed);
    EXPECT_EQ(st.deviceError, device_error::alignment);
    EXPECT_EQ(ctrl.state(), State::Idle);
    EXPECT_EQ(ctrl.transfersStarted(), 0u);
}

// --------------------------------------------------------- I4 queries

TEST_F(ControllerFixture, PageRefsDuringTransfer)
{
    fill(0x5000, 4096);
    store(devProxy(0), 4096);
    (void)load(memProxy(0x5000));
    EXPECT_TRUE(ctrl.pageBusy(0x5000));
    EXPECT_EQ(ctrl.pageRefCount(0x5000), 1u);
    EXPECT_FALSE(ctrl.pageBusy(0x6000));
    eq.run();
    EXPECT_FALSE(ctrl.pageBusy(0x5000));
    EXPECT_EQ(ctrl.pageRefCount(0x5000), 0u);
}

// ------------------------------------------------- Section 7 queueing

namespace
{

struct QueueFixture : ControllerFixture
{
    UdmaController qctrl{eq,  params, layout, memory,
                         bus, dev,    1,      2}; // depth 2, device 1

    Addr
    qMemProxy(Addr real) const
    {
        return layout.proxy(real, 1);
    }

    Addr
    qDevProxy(Addr off) const
    {
        return layout.devProxyBase(1) + off;
    }

    void
    qStore(Addr paddr, std::int64_t v)
    {
        qctrl.proxyStore(layout.decode(paddr), paddr, v);
    }

    Status
    qLoad(Addr paddr)
    {
        return Status::unpack(qctrl.proxyLoad(layout.decode(paddr),
                                              paddr));
    }
};

} // namespace

TEST_F(QueueFixture, QueuesWhileBusy)
{
    fill(0, 3 * 4096);
    qStore(qDevProxy(0), 4096);
    ASSERT_FALSE(qLoad(qMemProxy(0)).initiationFailed);
    // Engine busy: the next two pairs queue.
    qStore(qDevProxy(4096), 4096);
    Status s2 = qLoad(qMemProxy(4096));
    EXPECT_FALSE(s2.initiationFailed) << "accepted into the queue";
    EXPECT_EQ(s2.remainingBytes, 4096u);
    qStore(qDevProxy(8192), 4096);
    EXPECT_FALSE(qLoad(qMemProxy(8192)).initiationFailed);
    EXPECT_EQ(qctrl.queuedRequests(), 2u);

    // Queue full: refusal with the QUEUE-FULL error bit.
    qStore(qDevProxy(12288), 4096);
    Status s4 = qLoad(qMemProxy(12288));
    EXPECT_TRUE(s4.initiationFailed);
    EXPECT_EQ(s4.deviceError, device_error::queueFull);
    EXPECT_EQ(qctrl.queueRefusals(), 1u);

    eq.run();
    // The refused pair's DESTINATION stays latched for a LOAD-only
    // retry, so the machine rests in DestLoaded, not Idle.
    EXPECT_EQ(qctrl.state(), State::DestLoaded);
    EXPECT_EQ(dev.received.size(), 3u * 4096);
    EXPECT_EQ(qctrl.transfersStarted(), 3u);
    qctrl.inval();
    EXPECT_EQ(qctrl.state(), State::Idle);
}

TEST_F(QueueFixture, QueueDrainsInFifoOrder)
{
    fill(0, 2 * 4096);
    qStore(qDevProxy(100 * 4096), 256);
    (void)qLoad(qMemProxy(0));
    qStore(qDevProxy(200 * 4096), 256);
    (void)qLoad(qMemProxy(4096));
    qStore(qDevProxy(300 * 4096), 256);
    (void)qLoad(qMemProxy(8192));
    eq.run();
    ASSERT_EQ(dev.pushOffsets.size(), 3u);
    EXPECT_EQ(dev.pushOffsets[0], 100u * 4096);
    EXPECT_EQ(dev.pushOffsets[1], 200u * 4096);
    EXPECT_EQ(dev.pushOffsets[2], 300u * 4096);
}

TEST_F(QueueFixture, QueuedPagesCountForI4)
{
    fill(0, 2 * 4096);
    qStore(qDevProxy(0), 4096);
    (void)qLoad(qMemProxy(0));
    qStore(qDevProxy(4096), 4096);
    (void)qLoad(qMemProxy(4096));
    EXPECT_TRUE(qctrl.pageBusy(0)) << "in-flight page";
    EXPECT_TRUE(qctrl.pageBusy(4096)) << "queued page counts too";
    eq.run();
    EXPECT_FALSE(qctrl.pageBusy(0));
    EXPECT_FALSE(qctrl.pageBusy(4096));
}

TEST_F(QueueFixture, MatchCoversQueuedRequests)
{
    fill(0, 2 * 4096);
    qStore(qDevProxy(0), 4096);
    (void)qLoad(qMemProxy(0));
    qStore(qDevProxy(4096), 4096);
    (void)qLoad(qMemProxy(4096));
    Status st = qLoad(qMemProxy(4096));
    EXPECT_TRUE(st.match)
        << "waiting for the last transfer of a multi-page send";
    eq.run();
    EXPECT_FALSE(qLoad(qMemProxy(4096)).match);
}

TEST_F(QueueFixture, RefusedRequestKeepsPendingDestForRetry)
{
    fill(0, 4 * 4096);
    qStore(qDevProxy(0), 4096);
    (void)qLoad(qMemProxy(0));
    qStore(qDevProxy(4096), 4096);
    (void)qLoad(qMemProxy(4096));
    qStore(qDevProxy(8192), 4096);
    (void)qLoad(qMemProxy(8192));
    // Queue (depth 2) is full; this pair is refused...
    qStore(qDevProxy(12288), 4096);
    EXPECT_TRUE(qLoad(qMemProxy(12288)).initiationFailed);
    // ...but the destination stays latched: finish one transfer and
    // retry just the LOAD.
    while (qctrl.queuedRequests() == 2 && eq.step()) {
    }
    Status retry = qLoad(qMemProxy(12288));
    EXPECT_FALSE(retry.initiationFailed)
        << "'A transfer request is refused only when the queue is "
           "full' (Section 7)";
    eq.run();
    EXPECT_EQ(qctrl.transfersStarted(), 4u);
}
