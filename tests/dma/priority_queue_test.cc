/**
 * @file
 * Tests for the Section 7 two-queue design: "Implementing just two
 * queues, with the higher priority queue reserved for the system,
 * would certainly be useful."
 */

#include <gtest/gtest.h>

#include "dma/udma_controller.hh"
#include "mock_device.hh"

using namespace shrimp;
using namespace shrimp::dma;

namespace
{

struct PrioFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::MachineParams params;
    vm::AddressLayout layout{1 << 20, 4096, 1};
    mem::PhysicalMemory memory{1 << 20, 4096};
    bus::IoBus bus{eq, params};
    test::MockDevice dev;
    UdmaController ctrl{eq, params, layout, memory, bus,
                        dev, 0,      4,      2}; // user 4, system 2

    void
    userPair(Addr mem_real, Addr dev_off, std::uint32_t count)
    {
        Addr dst = layout.devProxyBase(0) + dev_off;
        ctrl.proxyStore(layout.decode(dst), dst,
                        std::int64_t(count));
        Addr src = layout.proxy(mem_real, 0);
        (void)ctrl.proxyLoad(layout.decode(src), src);
    }
};

} // namespace

TEST_F(PrioFixture, IdleSystemRequestStartsImmediately)
{
    bool done = false;
    EXPECT_TRUE(ctrl.systemRequest(true, 0x1000, 0, 256,
                                   [&] { done = true; }));
    EXPECT_EQ(ctrl.state(), UdmaController::State::Transferring);
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(dev.received.size(), 256u);
}

TEST_F(PrioFixture, SystemRequestsJumpUserQueue)
{
    // Start one user transfer and queue two more.
    userPair(0x0000, 100 * 4096, 4096);
    userPair(0x1000, 200 * 4096, 4096);
    userPair(0x2000, 300 * 4096, 4096);
    EXPECT_EQ(ctrl.queuedRequests(), 2u);

    // The kernel submits a paging transfer: it must run right after
    // the in-flight user transfer, before the queued ones.
    EXPECT_TRUE(ctrl.systemRequest(true, 0x8000, 999 * 4096, 512));
    EXPECT_EQ(ctrl.queuedSystemRequests(), 1u);

    eq.run();
    // The device records one offset per 256-byte chunk; the order of
    // each transfer's *first* chunk gives the service order.
    auto first_chunk_at = [&](Addr base) {
        for (std::size_t i = 0; i < dev.pushOffsets.size(); ++i) {
            if (dev.pushOffsets[i] == base)
                return i;
        }
        ADD_FAILURE() << "transfer at base " << base << " never ran";
        return std::size_t(0);
    };
    std::size_t user1 = first_chunk_at(100 * 4096);
    std::size_t sys = first_chunk_at(999 * 4096);
    std::size_t user2 = first_chunk_at(200 * 4096);
    std::size_t user3 = first_chunk_at(300 * 4096);
    EXPECT_LT(user1, sys);
    EXPECT_LT(sys, user2)
        << "system request served before queued user requests";
    EXPECT_LT(user2, user3);
}

TEST_F(PrioFixture, SystemQueueDepthEnforced)
{
    userPair(0x0000, 0, 4096); // engine busy
    EXPECT_TRUE(ctrl.systemRequest(true, 0x8000, 4096, 64));
    EXPECT_TRUE(ctrl.systemRequest(true, 0x9000, 8192, 64));
    EXPECT_FALSE(ctrl.systemRequest(true, 0xA000, 12288, 64))
        << "system queue depth is 2";
    eq.run();
}

TEST_F(PrioFixture, SystemRequestPagesCountForI4)
{
    userPair(0x0000, 0, 4096);
    EXPECT_TRUE(ctrl.systemRequest(false, 0x8000, 4096, 64));
    EXPECT_TRUE(ctrl.pageBusy(0x8000))
        << "queued system request holds its page";
    eq.run();
    EXPECT_FALSE(ctrl.pageBusy(0x8000));
}

TEST_F(PrioFixture, CompletionCallbacksFireInOrder)
{
    std::vector<int> order;
    userPair(0x0000, 0, 4096);
    ctrl.systemRequest(true, 0x8000, 4096, 64,
                       [&] { order.push_back(1); });
    ctrl.systemRequest(true, 0x9000, 8192, 64,
                       [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(ctrl.state(), UdmaController::State::Idle);
}
