/**
 * @file
 * Unit tests for the classic DMA engine (paper Figure 1): data
 * movement, chunking, flow control, scatter segments, and the I4
 * pageBusy query.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "dma/dma_engine.hh"
#include "mock_device.hh"

using namespace shrimp;
using namespace shrimp::dma;

namespace
{

struct EngineFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::MachineParams params;
    mem::PhysicalMemory memory{1 << 20, 4096};
    bus::IoBus bus{eq, params};
    test::MockDevice dev;
    DmaEngine engine{eq, params, memory, bus, dev, 256};

    bool completed = false;

    TransferDesc
    toDeviceDesc(Addr mem_addr, std::uint32_t len, Addr dev_off = 0)
    {
        TransferDesc d;
        d.toDevice = true;
        d.segments = {Segment{mem_addr, len}};
        d.devOffset = dev_off;
        d.onComplete = [this] { completed = true; };
        return d;
    }

    void
    fillMemory(Addr base, std::uint32_t len)
    {
        for (std::uint32_t i = 0; i < len; ++i) {
            std::uint8_t b = std::uint8_t(i * 13 + 1);
            memory.writeBytes(base + i, &b, 1);
        }
    }
};

} // namespace

TEST_F(EngineFixture, MovesDataToDevice)
{
    fillMemory(0x1000, 1000);
    engine.start(toDeviceDesc(0x1000, 1000, 64));
    EXPECT_TRUE(engine.busy());
    eq.run();
    EXPECT_FALSE(engine.busy());
    EXPECT_TRUE(completed);
    ASSERT_EQ(dev.received.size(), 1000u);
    for (std::uint32_t i = 0; i < 1000; ++i)
        ASSERT_EQ(dev.received[i], std::uint8_t(i * 13 + 1));
    EXPECT_EQ(dev.pushOffsets.front(), 64u)
        << "device offset must be passed through";
    EXPECT_EQ(engine.bytesMoved(), 1000u);
    EXPECT_EQ(engine.transfersCompleted(), 1u);
}

TEST_F(EngineFixture, MovesDataFromDevice)
{
    TransferDesc d;
    d.toDevice = false;
    d.segments = {Segment{0x2000, 512}};
    d.devOffset = 100;
    d.onComplete = [this] { completed = true; };
    engine.start(std::move(d));
    eq.run();
    EXPECT_TRUE(completed);
    for (std::uint32_t i = 0; i < 512; ++i) {
        EXPECT_EQ(memory.read<std::uint8_t>(0x2000 + i),
                  dev.sourceData[(100 + i) % dev.sourceData.size()]);
    }
}

TEST_F(EngineFixture, TransferTimeMatchesBurstBandwidth)
{
    fillMemory(0, 4096);
    engine.start(toDeviceDesc(0, 4096));
    Tick done = eq.run();
    Tick expected = params.dmaStart() + params.eisaBurst(4096);
    EXPECT_NEAR(double(done), double(expected),
                double(params.eisaBurst(256)))
        << "start latency + burst time, within one chunk";
}

TEST_F(EngineFixture, DeviceStartLatencyAdds)
{
    dev.extraStartLatency = 5 * tickUs;
    fillMemory(0, 256);
    engine.start(toDeviceDesc(0, 256));
    Tick done = eq.run();
    EXPECT_GE(done, params.dmaStart() + 5 * tickUs);
}

TEST_F(EngineFixture, FlowControlStallsAndResumes)
{
    fillMemory(0, 1024);
    dev.pushThrottle = 0; // device refuses everything
    engine.start(toDeviceDesc(0, 1024));
    eq.run();
    EXPECT_TRUE(engine.busy()) << "engine must stall, not spin";
    EXPECT_EQ(dev.received.size(), 0u);
    EXPECT_GT(engine.stallEvents(), 0u);
    dev.unthrottle();
    eq.run();
    EXPECT_FALSE(engine.busy());
    EXPECT_EQ(dev.received.size(), 1024u);
}

TEST_F(EngineFixture, PullFlowControlStallsAndResumes)
{
    dev.pullThrottle = 0; // the device has no data yet
    TransferDesc d;
    d.toDevice = false;
    d.segments = {Segment{0x2000, 512}};
    d.onComplete = [this] { completed = true; };
    engine.start(std::move(d));
    eq.run();
    EXPECT_TRUE(engine.busy()) << "pull side must stall, not spin";
    EXPECT_FALSE(completed);
    dev.unthrottle();
    eq.run();
    EXPECT_TRUE(completed);
    EXPECT_EQ(memory.read<std::uint8_t>(0x2000), dev.sourceData[0]);
}

TEST_F(EngineFixture, PullTrickleDeliversAllBytes)
{
    dev.pullThrottle = 64;
    TransferDesc d;
    d.toDevice = false;
    d.segments = {Segment{0x3000, 700}};
    d.devOffset = 40;
    d.onComplete = [this] { completed = true; };
    engine.start(std::move(d));
    eq.run();
    EXPECT_TRUE(completed);
    for (std::uint32_t i = 0; i < 700; ++i) {
        ASSERT_EQ(memory.read<std::uint8_t>(0x3000 + i),
                  dev.sourceData[(40 + i) % dev.sourceData.size()]);
    }
}

TEST_F(EngineFixture, PartialCapacityTrickle)
{
    fillMemory(0, 600);
    dev.pushThrottle = 100; // 100 bytes per chunk max
    engine.start(toDeviceDesc(0, 600));
    eq.run();
    EXPECT_EQ(dev.received.size(), 600u);
    for (std::uint32_t i = 0; i < 600; ++i)
        ASSERT_EQ(dev.received[i], std::uint8_t(i * 13 + 1));
}

TEST_F(EngineFixture, GatherSegments)
{
    fillMemory(0x1000, 300);
    fillMemory(0x5000, 200);
    TransferDesc d;
    d.toDevice = true;
    d.segments = {Segment{0x1000, 300}, Segment{0x5000, 200}};
    d.onComplete = [this] { completed = true; };
    engine.start(std::move(d));
    eq.run();
    ASSERT_EQ(dev.received.size(), 500u);
    // First 300 bytes from the first segment...
    for (std::uint32_t i = 0; i < 300; ++i)
        ASSERT_EQ(dev.received[i], std::uint8_t(i * 13 + 1));
    // ...then 200 from the second.
    for (std::uint32_t i = 0; i < 200; ++i)
        ASSERT_EQ(dev.received[300 + i], std::uint8_t(i * 13 + 1));
}

TEST_F(EngineFixture, RemainingCountsDown)
{
    fillMemory(0, 1024);
    engine.start(toDeviceDesc(0, 1024));
    EXPECT_EQ(engine.remaining(), 1024u);
    // Step a few events; remaining must be non-increasing to zero.
    std::uint32_t last = engine.remaining();
    while (eq.step()) {
        EXPECT_LE(engine.remaining(), last);
        last = engine.remaining();
    }
    EXPECT_EQ(engine.remaining(), 0u);
}

TEST_F(EngineFixture, PageBusyCoversWholeRange)
{
    fillMemory(0x1000, 8192);
    TransferDesc d;
    d.toDevice = true;
    d.segments = {Segment{0x1000, 8192}}; // pages 1 and 2 (and 3's head)
    engine.start(std::move(d));
    EXPECT_FALSE(engine.pageBusy(0)) << "page 0 ends where range starts";
    EXPECT_TRUE(engine.pageBusy(0x1000));
    EXPECT_TRUE(engine.pageBusy(0x2000));
    EXPECT_FALSE(engine.pageBusy(0x8000));
    eq.run();
    EXPECT_FALSE(engine.pageBusy(0x2000)) << "idle engine holds nothing";
}

TEST_F(EngineFixture, StartWhileBusyPanics)
{
    fillMemory(0, 256);
    engine.start(toDeviceDesc(0, 256));
    EXPECT_THROW(engine.start(toDeviceDesc(0, 256)), PanicError);
    eq.run();
}

TEST_F(EngineFixture, RejectsEmptyDescriptors)
{
    TransferDesc d;
    d.toDevice = true;
    EXPECT_THROW(engine.start(std::move(d)), PanicError);
    TransferDesc z;
    z.toDevice = true;
    z.segments = {Segment{0, 0}};
    EXPECT_THROW(engine.start(std::move(z)), PanicError);
}

TEST_F(EngineFixture, DeviceLifecycleHooksFire)
{
    fillMemory(0, 128);
    engine.start(toDeviceDesc(0, 128));
    EXPECT_EQ(dev.startCount, 1u);
    EXPECT_EQ(dev.finishCount, 0u);
    eq.run();
    EXPECT_EQ(dev.finishCount, 1u);
}

TEST_F(EngineFixture, BackToBackTransfersFromCompletion)
{
    // The controller starts the next queued request from onComplete;
    // the engine must support that reentrancy.
    fillMemory(0, 512);
    int chain = 0;
    TransferDesc d2 = toDeviceDesc(0x100, 128);
    d2.onComplete = [&] { ++chain; };
    TransferDesc d1 = toDeviceDesc(0, 128);
    d1.onComplete = [&, d2 = std::move(d2)]() mutable {
        ++chain;
        engine.start(std::move(d2));
    };
    engine.start(std::move(d1));
    eq.run();
    EXPECT_EQ(chain, 2);
    EXPECT_EQ(dev.received.size(), 256u);
}
