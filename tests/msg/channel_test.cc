/**
 * @file
 * Tests for the user-level message channel: correctness, ordering,
 * ring wrap-around, flow control (credit backpressure via automatic
 * update), zero-copy receive, and bidirectional use.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/system.hh"
#include "msg/channel.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
niConfig()
{
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.node.memBytes = 4 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    return cfg;
}

} // namespace

TEST(Channel, MessagesArriveInOrderWithContent)
{
    System sys(niConfig());
    auto &a = sys.node(0);
    auto &b = sys.node(1);
    msg::ChannelRendezvous rv;
    constexpr int messages = 6;
    std::vector<std::vector<std::uint8_t>> received;

    b.kernel().spawn("recv", [&](os::UserContext &ctx)
                                 -> sim::ProcTask {
        msg::ReceiverChannel ch(ctx, 0, *b.ni(), a.id());
        bool ok = co_await ch.bind(rv);
        EXPECT_TRUE(ok);
        Addr buf = co_await ctx.sysAllocMemory(8192);
        for (int m = 0; m < messages; ++m) {
            std::uint32_t len = co_await ch.recv(buf, 8192);
            std::vector<std::uint8_t> data(len);
            ctx.kernel().peekBytes(ctx.process(), buf, data.data(),
                                   len);
            received.push_back(std::move(data));
        }
    });

    a.kernel().spawn("send", [&](os::UserContext &ctx)
                                 -> sim::ProcTask {
        msg::SenderChannel ch(ctx, 0, *a.ni(), b.id());
        bool ok = co_await ch.connect(rv);
        EXPECT_TRUE(ok);
        Addr buf = co_await ctx.sysAllocMemory(8192);
        for (int m = 0; m < messages; ++m) {
            std::uint32_t len = 64 + 64 * m;
            std::vector<std::uint8_t> data(len);
            for (std::uint32_t i = 0; i < len; ++i)
                data[i] = std::uint8_t(m * 37 + i);
            ctx.kernel().pokeBytes(ctx.process(), buf, data.data(),
                                   len);
            EXPECT_TRUE(co_await ch.send(buf, len));
        }
    });

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run();
    ASSERT_EQ(received.size(), std::size_t(messages));
    for (int m = 0; m < messages; ++m) {
        ASSERT_EQ(received[m].size(), 64u + 64 * m);
        for (std::uint32_t i = 0; i < received[m].size(); ++i)
            ASSERT_EQ(received[m][i], std::uint8_t(m * 37 + i))
                << "message " << m << " byte " << i;
    }
}

TEST(Channel, RingWrapsManyTimes)
{
    System sys(niConfig());
    auto &a = sys.node(0);
    auto &b = sys.node(1);
    msg::ChannelRendezvous rv;
    rv.slots = 4; // force several wraps
    constexpr int messages = 19;
    int received = 0;
    bool content_ok = true;

    b.kernel().spawn("recv", [&](os::UserContext &ctx)
                                 -> sim::ProcTask {
        msg::ReceiverChannel ch(ctx, 0, *b.ni(), a.id());
        co_await ch.bind(rv);
        Addr buf = co_await ctx.sysAllocMemory(4096);
        for (int m = 0; m < messages; ++m) {
            std::uint32_t len = co_await ch.recv(buf, 4096);
            std::uint64_t v = co_await ctx.load(buf);
            content_ok = content_ok && len == 8
                         && v == std::uint64_t(0xC0DE0000 + m);
            ++received;
        }
    });

    a.kernel().spawn("send", [&](os::UserContext &ctx)
                                 -> sim::ProcTask {
        msg::SenderChannel ch(ctx, 0, *a.ni(), b.id());
        co_await ch.connect(rv);
        Addr buf = co_await ctx.sysAllocMemory(4096);
        for (int m = 0; m < messages; ++m) {
            co_await ctx.store(buf, 0xC0DE0000 + m);
            EXPECT_TRUE(co_await ch.send(buf, 8));
        }
    });

    sys.runUntilAllDone(Tick(120) * tickSec);
    sys.run();
    EXPECT_EQ(received, messages);
    EXPECT_TRUE(content_ok);
}

TEST(Channel, SenderBlocksWhenReceiverIsSlow)
{
    System sys(niConfig());
    auto &a = sys.node(0);
    auto &b = sys.node(1);
    msg::ChannelRendezvous rv;
    rv.slots = 2; // tiny ring: sender must stall on credit
    Tick sender_done = 0;
    Tick receiver_first_recv = 0;

    b.kernel().spawn("recv", [&](os::UserContext &ctx)
                                 -> sim::ProcTask {
        msg::ReceiverChannel ch(ctx, 0, *b.ni(), a.id());
        co_await ch.bind(rv);
        Addr buf = co_await ctx.sysAllocMemory(4096);
        // Dawdle before consuming anything.
        co_await ctx.compute(600000); // 10 ms at 60 MHz
        receiver_first_recv = ctx.kernel().eq().now();
        for (int m = 0; m < 5; ++m)
            (void)co_await ch.recv(buf, 4096);
    });

    a.kernel().spawn("send", [&](os::UserContext &ctx)
                                 -> sim::ProcTask {
        msg::SenderChannel ch(ctx, 0, *a.ni(), b.id());
        co_await ch.connect(rv);
        Addr buf = co_await ctx.sysAllocMemory(4096);
        co_await ctx.store(buf, 1);
        for (int m = 0; m < 5; ++m)
            EXPECT_TRUE(co_await ch.send(buf, 8));
        sender_done = ctx.kernel().eq().now();
        EXPECT_LE(co_await ch.unacked(), 2u)
            << "never more than `slots` messages unacknowledged";
    });

    sys.runUntilAllDone(Tick(120) * tickSec);
    sys.run();
    EXPECT_GT(sender_done, receiver_first_recv)
        << "the sender cannot finish before the receiver drains";
}

TEST(Channel, ZeroCopyReceive)
{
    System sys(niConfig());
    auto &a = sys.node(0);
    auto &b = sys.node(1);
    msg::ChannelRendezvous rv;
    std::uint64_t seen = 0;

    b.kernel().spawn("recv", [&](os::UserContext &ctx)
                                 -> sim::ProcTask {
        msg::ReceiverChannel ch(ctx, 0, *b.ni(), a.id());
        co_await ch.bind(rv);
        std::uint32_t len = 0;
        Addr payload = co_await ch.recvZeroCopy(len);
        EXPECT_EQ(len, 16u);
        seen = co_await ctx.load(payload + 8);
        co_await ch.ackLast();
    });

    a.kernel().spawn("send", [&](os::UserContext &ctx)
                                 -> sim::ProcTask {
        msg::SenderChannel ch(ctx, 0, *a.ni(), b.id());
        co_await ch.connect(rv);
        Addr buf = co_await ctx.sysAllocMemory(4096);
        co_await ctx.store(buf, 0x1111);
        co_await ctx.store(buf + 8, 0x2222);
        co_await ch.send(buf, 16);
    });

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run();
    EXPECT_EQ(seen, 0x2222u);
}

TEST(Channel, TwoChannelsMakeABidirectionalLink)
{
    System sys(niConfig());
    auto &a = sys.node(0);
    auto &b = sys.node(1);
    msg::ChannelRendezvous ab, ba;
    std::uint64_t final_value = 0;
    constexpr int hops = 8;

    // A increments and forwards; B increments and returns.
    a.kernel().spawn("a", [&](os::UserContext &ctx) -> sim::ProcTask {
        msg::SenderChannel tx(ctx, 0, *a.ni(), b.id());
        msg::ReceiverChannel rx(ctx, 0, *a.ni(), b.id());
        // Handshake order matters when one process owns both ends:
        // A connects (exporting its credit word first), B binds
        // (exporting its ring first) — the two spin-waits interleave.
        co_await tx.connect(ab);
        co_await rx.bind(ba);
        Addr buf = co_await ctx.sysAllocMemory(4096);
        std::uint64_t v = 0;
        for (int h = 0; h < hops; ++h) {
            co_await ctx.store(buf, v + 1);
            co_await tx.send(buf, 8);
            (void)co_await rx.recv(buf, 4096);
            v = co_await ctx.load(buf);
        }
        final_value = v;
    });

    b.kernel().spawn("b", [&](os::UserContext &ctx) -> sim::ProcTask {
        msg::SenderChannel tx(ctx, 0, *b.ni(), a.id());
        msg::ReceiverChannel rx(ctx, 0, *b.ni(), a.id());
        co_await rx.bind(ab);
        co_await tx.connect(ba);
        Addr buf = co_await ctx.sysAllocMemory(4096);
        for (int h = 0; h < hops; ++h) {
            (void)co_await rx.recv(buf, 4096);
            std::uint64_t v = co_await ctx.load(buf);
            co_await ctx.store(buf, v + 1);
            co_await tx.send(buf, 8);
        }
    });

    sys.runUntilAllDone(Tick(120) * tickSec);
    sys.run();
    EXPECT_EQ(final_value, std::uint64_t(2 * hops));
}

TEST(Channel, OversizeMessageRefused)
{
    System sys(niConfig());
    auto &a = sys.node(0);
    auto &b = sys.node(1);
    msg::ChannelRendezvous rv;
    bool refused = false;

    b.kernel().spawn("recv", [&](os::UserContext &ctx)
                                 -> sim::ProcTask {
        msg::ReceiverChannel ch(ctx, 0, *b.ni(), a.id());
        co_await ch.bind(rv);
    });
    a.kernel().spawn("send", [&](os::UserContext &ctx)
                                 -> sim::ProcTask {
        msg::SenderChannel ch(ctx, 0, *a.ni(), b.id());
        co_await ch.connect(rv);
        Addr buf = co_await ctx.sysAllocMemory(8192);
        co_await ctx.store(buf, 1);
        bool ok = co_await ch.send(buf, rv.slotBytes); // > capacity
        refused = !ok;
    });
    sys.runUntilAllDone(Tick(60) * tickSec);
    EXPECT_TRUE(refused);
}
