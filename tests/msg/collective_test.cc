/**
 * @file
 * Tests for the collective operations over UDMA channels.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/system.hh"
#include "msg/collective.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
meshConfig(unsigned nodes)
{
    SystemConfig cfg;
    cfg.nodes = nodes;
    cfg.node.memBytes = 8 << 20;
    cfg.params.quantumUs = 500.0;
    cfg.node.devices.push_back(DeviceConfig{});
    return cfg;
}

} // namespace

TEST(Collective, SetupBuildsFullMesh)
{
    constexpr unsigned n = 3;
    System sys(meshConfig(n));
    msg::CommRendezvous rv(n);
    int ready = 0;
    for (unsigned r = 0; r < n; ++r) {
        auto *node = &sys.node(r);
        node->kernel().spawn(
            "rank" + std::to_string(r),
            [&, r, node](os::UserContext &ctx) -> sim::ProcTask {
                msg::Communicator comm(ctx, 0, *node->ni(), r, rv);
                bool ok = co_await comm.setup();
                EXPECT_TRUE(ok) << "rank " << r;
                if (ok)
                    ++ready;
            });
    }
    sys.runUntilAllDone(Tick(120) * tickSec);
    EXPECT_EQ(ready, int(n));
}

TEST(Collective, BarrierSynchronizes)
{
    constexpr unsigned n = 4;
    constexpr int rounds = 5;
    System sys(meshConfig(n));
    msg::CommRendezvous rv(n);
    // entered[k] counts ranks that entered barrier round k; a rank
    // may only leave round k once all n entered it.
    std::vector<int> entered(rounds, 0);
    bool violation = false;

    for (unsigned r = 0; r < n; ++r) {
        auto *node = &sys.node(r);
        node->kernel().spawn(
            "rank" + std::to_string(r),
            [&, r, node](os::UserContext &ctx) -> sim::ProcTask {
                msg::Communicator comm(ctx, 0, *node->ni(), r, rv);
                EXPECT_TRUE(co_await comm.setup());
                for (int k = 0; k < rounds; ++k) {
                    ++entered[k];
                    co_await comm.barrier();
                    if (entered[k] != int(n))
                        violation = true;
                }
            });
    }
    sys.runUntilAllDone(Tick(300) * tickSec);
    EXPECT_FALSE(violation)
        << "a rank left a barrier before everyone entered";
    for (int k = 0; k < rounds; ++k)
        EXPECT_EQ(entered[k], int(n));
}

TEST(Collective, BroadcastDeliversContent)
{
    constexpr unsigned n = 4;
    constexpr std::uint32_t bytes = 10000; // multi-chunk
    System sys(meshConfig(n));
    msg::CommRendezvous rv(n);
    std::vector<std::vector<std::uint8_t>> got(n);

    for (unsigned r = 0; r < n; ++r) {
        auto *node = &sys.node(r);
        node->kernel().spawn(
            "rank" + std::to_string(r),
            [&, r, node](os::UserContext &ctx) -> sim::ProcTask {
                msg::Communicator comm(ctx, 0, *node->ni(), r, rv);
                EXPECT_TRUE(co_await comm.setup());
                Addr buf = co_await ctx.sysAllocMemory(bytes + 8);
                if (r == 1) { // root
                    std::vector<std::uint8_t> data(bytes);
                    for (std::uint32_t i = 0; i < bytes; ++i)
                        data[i] = std::uint8_t(i * 11 + 3);
                    ctx.kernel().pokeBytes(ctx.process(), buf,
                                           data.data(), bytes);
                }
                co_await comm.broadcast(1, buf, bytes);
                got[r].resize(bytes);
                ctx.kernel().peekBytes(ctx.process(), buf,
                                       got[r].data(), bytes);
            });
    }
    sys.runUntilAllDone(Tick(300) * tickSec);
    for (unsigned r = 0; r < n; ++r) {
        ASSERT_EQ(got[r].size(), bytes) << "rank " << r;
        for (std::uint32_t i = 0; i < bytes; ++i)
            ASSERT_EQ(got[r][i], std::uint8_t(i * 11 + 3))
                << "rank " << r << " byte " << i;
    }
}

TEST(Collective, AllReduceSumsEverybody)
{
    constexpr unsigned n = 4;
    System sys(meshConfig(n));
    msg::CommRendezvous rv(n);
    std::vector<std::uint64_t> results(n, 0);

    for (unsigned r = 0; r < n; ++r) {
        auto *node = &sys.node(r);
        node->kernel().spawn(
            "rank" + std::to_string(r),
            [&, r, node](os::UserContext &ctx) -> sim::ProcTask {
                msg::Communicator comm(ctx, 0, *node->ni(), r, rv);
                EXPECT_TRUE(co_await comm.setup());
                results[r] =
                    co_await comm.allReduceSum(100 * (r + 1));
            });
    }
    sys.runUntilAllDone(Tick(300) * tickSec);
    for (unsigned r = 0; r < n; ++r)
        EXPECT_EQ(results[r], 100u + 200 + 300 + 400)
            << "rank " << r;
}

TEST(Collective, PointToPointThroughMesh)
{
    constexpr unsigned n = 3;
    System sys(meshConfig(n));
    msg::CommRendezvous rv(n);
    std::uint64_t relay_result = 0;

    // 0 -> 1 -> 2, each hop increments.
    for (unsigned r = 0; r < n; ++r) {
        auto *node = &sys.node(r);
        node->kernel().spawn(
            "rank" + std::to_string(r),
            [&, r, node](os::UserContext &ctx) -> sim::ProcTask {
                msg::Communicator comm(ctx, 0, *node->ni(), r, rv);
                EXPECT_TRUE(co_await comm.setup());
                Addr buf = co_await ctx.sysAllocMemory(4096);
                if (r == 0) {
                    co_await ctx.store(buf, 1000);
                    co_await comm.sendTo(1, buf, 8);
                } else if (r == 1) {
                    co_await comm.recvFrom(0, buf, 4096);
                    std::uint64_t v = co_await ctx.load(buf);
                    co_await ctx.store(buf, v + 1);
                    co_await comm.sendTo(2, buf, 8);
                } else {
                    co_await comm.recvFrom(1, buf, 4096);
                    std::uint64_t v = co_await ctx.load(buf);
                    relay_result = v + 1;
                }
            });
    }
    sys.runUntilAllDone(Tick(300) * tickSec);
    EXPECT_EQ(relay_result, 1002u);
}
