/**
 * @file
 * Tests for System::dumpStats.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

TEST(StatsDump, EmitsAllComponentCounters)
{
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.node.memBytes = 4 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);

    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1);
        });
    sys.runUntilAllDone();

    std::ostringstream os;
    sys.dumpStats(os);
    std::string out = os.str();

    for (const char *key :
         {"sim.ticks ", "sim.events ", "net.bytesRouted ",
          "node0.kernel.contextSwitches ", "node0.kernel.pageFaults ",
          "node0.udma0.transfersStarted ", "node0.ni.messagesSent ",
          "node0.bus.bursts ", "node0.tlb.hits ",
          "node1.kernel.contextSwitches ", "node0.swap.pageWrites "}) {
        EXPECT_NE(out.find(key), std::string::npos)
            << "missing stat: " << key;
    }
}

TEST(StatsDump, ValuesReflectActivity)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    cfg.node.devices.push_back(fb);
    System sys(cfg);

    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 7);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            co_await udmaTransfer(ctx, 0, win, buf, 512, true);
        });
    sys.runUntilAllDone();

    std::ostringstream os;
    sys.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("node0.udma0.transfersStarted 1"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("node0.udma0.engine.bytesMoved 512"),
              std::string::npos)
        << out;
}
