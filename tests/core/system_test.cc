/**
 * @file
 * Unit tests for the public System/Node builders.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace shrimp;
using namespace shrimp::core;

TEST(System, BuildsRequestedTopology)
{
    SystemConfig cfg;
    cfg.nodes = 3;
    cfg.node.memBytes = 1 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);
    EXPECT_EQ(sys.nodeCount(), 3u);
    for (unsigned i = 0; i < 3; ++i) {
        EXPECT_EQ(sys.node(i).id(), i);
        EXPECT_NE(sys.node(i).ni(), nullptr);
        EXPECT_TRUE(sys.net().hasNode(i));
        EXPECT_EQ(sys.node(i).memory().size(), 1u << 20);
    }
}

TEST(System, ZeroNodesIsFatal)
{
    SystemConfig cfg;
    cfg.nodes = 0;
    EXPECT_THROW(System sys(cfg), FatalError);
}

TEST(System, MultipleDevicesPerNode)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 1 << 20;
    DeviceConfig ni;
    ni.kind = DeviceKind::ShrimpNi;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    DeviceConfig disk;
    disk.kind = DeviceKind::Disk;
    cfg.node.devices = {ni, fb, disk};
    System sys(cfg);
    auto &n = sys.node(0);
    EXPECT_NE(n.ni(), nullptr);
    EXPECT_NE(n.frameBuffer(), nullptr);
    EXPECT_NE(n.disk(), nullptr);
    EXPECT_EQ(n.deviceIndexOf(DeviceKind::ShrimpNi), 0);
    EXPECT_EQ(n.deviceIndexOf(DeviceKind::FrameBuffer), 1);
    EXPECT_EQ(n.deviceIndexOf(DeviceKind::Disk), 2);
    EXPECT_EQ(n.deviceIndexOf(DeviceKind::FifoNic), -1);
    // Each slot has its own UDMA controller.
    EXPECT_NE(n.controller(0), nullptr);
    EXPECT_NE(n.controller(1), nullptr);
    EXPECT_NE(n.controller(2), nullptr);
    EXPECT_EQ(n.controller(1)->deviceIndex(), 1u);
    EXPECT_EQ(n.kernel().controllers().size(), 3u);
}

TEST(System, TraditionalSlotHasDriverNotController)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 1 << 20;
    DeviceConfig d;
    d.kind = DeviceKind::StreamSink;
    d.driver = DriverKind::Traditional;
    cfg.node.devices.push_back(d);
    System sys(cfg);
    EXPECT_EQ(sys.node(0).controller(0), nullptr);
    EXPECT_NE(sys.node(0).tradDriver(0), nullptr);
}

TEST(System, QueueDepthConfigurable)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 1 << 20;
    DeviceConfig d;
    d.kind = DeviceKind::StreamSink;
    d.queueDepth = 4;
    cfg.node.devices.push_back(d);
    System sys(cfg);
    EXPECT_EQ(sys.node(0).controller(0)->queueDepth(), 4u);
}

TEST(System, RunUntilLimitStops)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 1 << 20;
    cfg.node.devices.push_back(
        DeviceConfig{DeviceKind::StreamSink, DriverKind::Udma, 0,
                     640, 480, 16 << 20, 1 << 30});
    System sys(cfg);
    sys.node(0).kernel().spawn(
        "spinner", [](os::UserContext &ctx) -> sim::ProcTask {
            for (;;)
                co_await ctx.compute(1000);
        });
    Tick end = sys.runUntilAllDone(5 * tickUs * 1000); // 5 ms cap
    EXPECT_EQ(end, 5 * tickUs * 1000);
    EXPECT_FALSE(sys.node(0).kernel().allProcessesDone());
}
