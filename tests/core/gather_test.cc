/**
 * @file
 * Tests for the Section 7 gather helper.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
fbConfig(std::uint32_t queue_depth)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 256;
    fb.fbHeight = 64;
    fb.queueDepth = queue_depth;
    cfg.node.devices.push_back(fb);
    return cfg;
}

void
runGather(std::uint32_t queue_depth)
{
    System sys(fbConfig(queue_depth));
    std::uint64_t transfers = 0;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            // Three scattered pieces from three separate regions.
            Addr a = co_await ctx.sysAllocMemory(4096);
            Addr b = co_await ctx.sysAllocMemory(4096);
            Addr c = co_await ctx.sysAllocMemory(4096);
            for (int i = 0; i < 32; ++i) {
                co_await ctx.store(a + i * 8, 0xAAAA0000 + i);
                co_await ctx.store(b + i * 8, 0xBBBB0000 + i);
                co_await ctx.store(c + i * 8, 0xCCCC0000 + i);
            }
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 4, true);
            std::vector<GatherPiece> pieces = {
                {a, 256}, {b, 256}, {c, 256}};
            transfers = co_await udmaGather(ctx, 0, win,
                                            std::move(pieces), true);
        });
    sys.runUntilAllDone(Tick(60) * tickSec);

    EXPECT_EQ(transfers, 3u);
    auto *fb = sys.node(0).frameBuffer();
    // Piece a at bytes [0,256), b at [256,512), c at [512,768).
    EXPECT_EQ(fb->pixel(0, 0), 0xAAAA0000u);
    EXPECT_EQ(fb->pixel(64, 0), 0xBBBB0000u);
    EXPECT_EQ(fb->pixel(128, 0), 0xCCCC0000u);
    EXPECT_EQ(fb->pixel(130, 0), 0xCCCC0001u);
    EXPECT_EQ(sys.node(0).controller(0)->transfersStarted(), 3u);
}

} // namespace

TEST(Gather, BasicControllerSerializesViaRetry)
{
    runGather(0);
}

TEST(Gather, QueuedControllerAbsorbsAllPieces)
{
    runGather(8);
}

TEST(Gather, QueueAbsorbsAllPiecesUpFront)
{
    // With the hardware queue, every piece is accepted back-to-back
    // (two instructions per page) before the first transfer finishes;
    // without it, only one transfer can be outstanding and the rest
    // are still unsubmitted when the issue loop returns.
    for (std::uint32_t depth : {0u, 8u}) {
        System sys(fbConfig(depth));
        std::size_t queued_at_issue = 0;
        bool busy_at_issue = false;
        sys.node(0).kernel().spawn(
            "p", [&](os::UserContext &ctx) -> sim::ProcTask {
                Addr a = co_await ctx.sysAllocMemory(8 * 4096);
                for (int p = 0; p < 8; ++p)
                    co_await ctx.store(a + p * 4096, p);
                Addr win =
                    co_await ctx.sysMapDeviceProxy(0, 0, 8, true);
                std::vector<GatherPiece> pieces;
                for (int p = 0; p < 8; ++p)
                    pieces.push_back({a + p * 4096, 4096});
                co_await udmaGather(ctx, 0, win, std::move(pieces),
                                    /*wait_completion=*/false);
                auto *ctrl = ctx.kernel().controllers().front();
                queued_at_issue = ctrl->queuedRequests();
                busy_at_issue =
                    ctrl->state()
                    == dma::UdmaController::State::Transferring;
                co_await udmaWait(
                    ctx, ctx.proxyAddr(a + 7 * 4096, 0));
            });
        sys.runUntilAllDone(Tick(60) * tickSec);
        EXPECT_TRUE(busy_at_issue);
        if (depth == 0) {
            EXPECT_EQ(queued_at_issue, 0u)
                << "basic hardware holds a single transfer";
        } else {
            EXPECT_GE(queued_at_issue, 5u)
                << "the Section 7 queue absorbed the pieces while "
                   "the first transfer was still running";
        }
        EXPECT_EQ(sys.node(0).controller(0)->transfersStarted(), 8u);
    }
}

TEST(Gather, EmptyPiecesAreSkipped)
{
    System sys(fbConfig(4));
    std::uint64_t transfers = ~0ull;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr a = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(a, 1);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            std::vector<GatherPiece> pieces = {
                {a, 0}, {a, 64}, {a + 128, 0}};
            transfers = co_await udmaGather(ctx, 0, win,
                                            std::move(pieces), true);
        });
    sys.runUntilAllDone(Tick(60) * tickSec);
    EXPECT_EQ(transfers, 1u);
}
