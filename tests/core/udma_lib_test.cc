/**
 * @file
 * Unit tests for the user-level UDMA library recipes (Section 5).
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
fbConfig()
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 512;
    fb.fbHeight = 512;
    cfg.node.devices.push_back(fb);
    return cfg;
}

} // namespace

TEST(UdmaLib, InitiateReturnsDecodedStatus)
{
    System sys(fbConfig());
    dma::Status st;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            st = co_await udmaInitiate(ctx, win,
                                       ctx.proxyAddr(buf, 0), 512);
            co_await udmaWait(ctx, ctx.proxyAddr(buf, 0));
        });
    sys.runUntilAllDone();
    EXPECT_FALSE(st.initiationFailed);
    EXPECT_EQ(st.remainingBytes, 512u);
}

TEST(UdmaLib, StartRetriesWhileEngineBusy)
{
    System sys(fbConfig());
    std::uint64_t status_loads = 0;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(2 * 4096);
            co_await ctx.store(buf, 1);
            co_await ctx.store(buf + 4096, 2);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 2, true);
            // Start a 4 KB transfer, then immediately try another:
            // udmaStart must spin on TRANSFERRING and then succeed.
            dma::Status st1 = co_await udmaStart(
                ctx, win, ctx.proxyAddr(buf, 0), 4096);
            EXPECT_FALSE(st1.initiationFailed);
            dma::Status st2 = co_await udmaStart(
                ctx, win + 4096, ctx.proxyAddr(buf + 4096, 0), 4096);
            EXPECT_FALSE(st2.initiationFailed);
            co_await udmaWait(ctx, ctx.proxyAddr(buf + 4096, 0));
        });
    sys.runUntilAllDone();
    auto *ctrl = sys.node(0).controller(0);
    status_loads = ctrl->statusLoads();
    EXPECT_EQ(ctrl->transfersStarted(), 2u);
    EXPECT_GT(status_loads, 4u) << "busy retries must have polled";
}

TEST(UdmaLib, StartReturnsRealErrorsWithoutRetrying)
{
    System sys(fbConfig());
    dma::Status st;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            // Unaligned transfer: alignment error, no infinite spin.
            st = co_await udmaStart(ctx, win + 4,
                                    ctx.proxyAddr(buf, 0), 6);
        });
    sys.runUntilAllDone(Tick(10) * tickSec);
    EXPECT_TRUE(st.initiationFailed);
    EXPECT_EQ(st.deviceError, dma::device_error::alignment);
}

TEST(UdmaLib, WrongSpaceSurfacesToCaller)
{
    System sys(fbConfig());
    dma::Status st;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(2 * 4096);
            co_await ctx.store(buf, 1);
            co_await ctx.store(buf + 4096, 1);
            // memory -> memory: BadLoad.
            st = co_await udmaStart(ctx, ctx.proxyAddr(buf, 0),
                                    ctx.proxyAddr(buf + 4096, 0), 64);
        });
    sys.runUntilAllDone(Tick(10) * tickSec);
    EXPECT_TRUE(st.initiationFailed);
    EXPECT_TRUE(st.wrongSpace);
}

TEST(UdmaLib, TransferSplitsUnalignedSpans)
{
    System sys(fbConfig());
    std::uint64_t transfers = 0;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(3 * 4096);
            for (Addr off = 0; off < 3 * 4096; off += 4096)
                co_await ctx.store(buf + off, off);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 3, true);
            // Source starts 1 KB into a page; span covers 2 pages of
            // source and lands at dev offset 512: pieces are clamped
            // by both sides.
            transfers = co_await udmaTransfer(ctx, 0, win + 512,
                                              buf + 1024, 6144, true);
        });
    sys.runUntilAllDone(Tick(10) * tickSec);
    // Pieces: src page-end 3072, then dest page-end limits, etc.
    EXPECT_GE(transfers, 2u);
    auto *ctrl = sys.node(0).controller(0);
    EXPECT_EQ(ctrl->transfersStarted(), transfers);
}

TEST(UdmaLib, TransferMovesExactBytes)
{
    System sys(fbConfig());
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            for (unsigned i = 0; i < 128; ++i)
                co_await ctx.store(buf + i * 8, 0x0101010101010101ull
                                                    * (i & 0x7f));
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            co_await udmaTransfer(ctx, 0, win, buf, 1024, true);
        });
    sys.runUntilAllDone();
    auto *fb = sys.node(0).frameBuffer();
    for (unsigned i = 0; i < 128; ++i) {
        EXPECT_EQ(fb->pixel((i * 2) % 512, (i * 2) / 512),
                  0x01010101u * (i & 0x7f));
    }
}

TEST(UdmaLib, PollWordSpinsUntilValue)
{
    System sys(fbConfig());
    std::uint64_t polls = 0;
    sys.node(0).kernel().spawn(
        "writer", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            // Another "thread" of the same program: delayed flag.
            ctx.kernel().eq().scheduleIn(
                200 * tickUs, "flag", [&ctx, buf] {
                    std::uint64_t v = 0x600D;
                    ctx.kernel().pokeBytes(ctx.process(), buf, &v, 8);
                });
            polls = co_await pollWord(ctx, buf, 0x600D);
        });
    sys.runUntilAllDone(Tick(10) * tickSec);
    EXPECT_GT(polls, 10u) << "a 200 us delay needs many polls";
}
